//! The wire codec: a compact, self-describing binary format implementing the
//! full serde [`Serializer`](ser::Serializer)/[`Deserializer`](de::Deserializer)
//! surface.
//!
//! Every frame starts with a 6-byte header — the `MLNW` magic followed by a
//! little-endian [`CODEC_VERSION`] — so a peer can reject frames from a
//! different protocol generation before touching the payload (the benchmark
//! reports embed the same version, tying artifacts to the codec that framed
//! them).  After the header the payload is a stream of tagged values:
//!
//! | tag | value |
//! |-----|-------|
//! | `0` | unit |
//! | `1`/`2` | `false` / `true` |
//! | `3` | unsigned integer, LEB128 varint |
//! | `4` | signed integer, zigzag varint |
//! | `5`/`6` | `f32` / `f64`, little-endian IEEE bits |
//! | `7` | `char`, varint scalar value |
//! | `8` | string, varint byte length + UTF-8 bytes |
//! | `9` | bytes, varint length + raw bytes |
//! | `10`/`11` | `None` / `Some` + value |
//! | `12` | sequence, varint element count + elements |
//! | `13` | map, varint entry count + key/value pairs |
//! | `14` | enum, varint variant index + payload value |
//!
//! Tuples and structs are framed as sequences (tag `12`) — field names never
//! cross the wire; the derive machinery reads structs positionally through
//! `visit_seq`.  Newtype structs are transparent and unit structs are unit.
//!
//! Because every value carries its tag, the decoder can skip unknown content
//! (`deserialize_ignored_any`) and every `deserialize_*` method can share one
//! tag dispatcher — the format is self-describing in the same sense as
//! serde's data model, just without the field-name overhead of JSON.

use serde::{de, ser, Deserialize, Serialize};
use std::fmt;

/// Protocol generation of this codec.  Bump on any change to the tag table
/// or framing; peers refuse frames whose header disagrees.
pub const CODEC_VERSION: u16 = 1;

/// Frame magic: these four bytes open every encoded frame.
pub const MAGIC: [u8; 4] = *b"MLNW";

const TAG_UNIT: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_UINT: u8 = 3;
const TAG_INT: u8 = 4;
const TAG_F32: u8 = 5;
const TAG_F64: u8 = 6;
const TAG_CHAR: u8 = 7;
const TAG_STR: u8 = 8;
const TAG_BYTES: u8 = 9;
const TAG_NONE: u8 = 10;
const TAG_SOME: u8 = 11;
const TAG_SEQ: u8 = 12;
const TAG_MAP: u8 = 13;
const TAG_ENUM: u8 = 14;

/// Anything that can go wrong encoding or decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Free-form error raised through `serde::{ser,de}::Error::custom`.
    Message(String),
    /// Input ended mid-value.
    Eof,
    /// A frame decoded cleanly but left unread bytes behind.
    Trailing {
        /// Offset of the first unread byte.
        at: usize,
    },
    /// The frame does not open with the `MLNW` magic.
    BadMagic,
    /// The frame's codec version differs from ours.
    Version {
        /// Version found in the frame header.
        found: u16,
        /// Version this build speaks.
        expected: u16,
    },
    /// A value's tag does not match what the caller asked for.
    Tag {
        /// Tag byte found in the input.
        found: u8,
        /// What the decoder was asked to produce.
        expected: &'static str,
    },
    /// A string's bytes are not valid UTF-8.
    Utf8,
    /// A varint ran past ten bytes.
    VarintOverflow,
    /// A char scalar value outside the Unicode range.
    BadChar(u32),
    /// `serialize_seq(None)` — this format needs lengths up front.
    UnsizedSequence,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Message(msg) => write!(f, "{msg}"),
            CodecError::Eof => write!(f, "unexpected end of input"),
            CodecError::Trailing { at } => write!(f, "trailing bytes after frame (offset {at})"),
            CodecError::BadMagic => write!(f, "frame does not start with the MLNW magic"),
            CodecError::Version { found, expected } => {
                write!(
                    f,
                    "codec version mismatch: frame v{found}, expected v{expected}"
                )
            }
            CodecError::Tag { found, expected } => {
                write!(f, "unexpected tag {found}, expected {expected}")
            }
            CodecError::Utf8 => write!(f, "string is not valid UTF-8"),
            CodecError::VarintOverflow => write!(f, "varint longer than ten bytes"),
            CodecError::BadChar(v) => write!(f, "invalid char scalar value {v}"),
            CodecError::UnsizedSequence => {
                write!(f, "sequences without an up-front length are unsupported")
            }
        }
    }
}

impl std::error::Error for CodecError {}

impl ser::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError::Message(msg.to_string())
    }
}

impl de::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError::Message(msg.to_string())
    }
}

/// Encode a value into a fresh framed buffer (header + tagged payload).
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, CodecError> {
    let mut enc = Encoder::new();
    value.serialize(&mut enc)?;
    Ok(enc.into_bytes())
}

/// Decode a framed buffer produced by [`to_bytes`].  Rejects bad magic,
/// version mismatches and trailing garbage.
pub fn from_bytes<T: de::DeserializeOwned>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut dec = Decoder::new(bytes)?;
    let value = T::deserialize(&mut dec)?;
    if dec.pos != bytes.len() {
        return Err(CodecError::Trailing { at: dec.pos });
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Encoder.
// ---------------------------------------------------------------------------

/// Streaming encoder: the frame header is written on construction, values
/// append as they serialize.
#[derive(Debug)]
pub struct Encoder {
    out: Vec<u8>,
}

impl Encoder {
    /// Open a frame: magic + version header, no payload yet.
    pub fn new() -> Self {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&CODEC_VERSION.to_le_bytes());
        Encoder { out }
    }

    /// Close the frame and take the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.out
    }

    fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.out.push(byte);
                return;
            }
            self.out.push(byte | 0x80);
        }
    }

    fn put_uint(&mut self, v: u64) {
        self.out.push(TAG_UINT);
        self.put_varint(v);
    }

    fn put_int(&mut self, v: i64) {
        self.out.push(TAG_INT);
        // Zigzag: small magnitudes of either sign stay short on the wire.
        self.put_varint(((v << 1) ^ (v >> 63)) as u64);
    }

    fn put_seq_header(&mut self, len: usize) {
        self.out.push(TAG_SEQ);
        self.put_varint(len as u64);
    }
}

impl Default for Encoder {
    fn default() -> Self {
        Encoder::new()
    }
}

impl ser::Serializer for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), CodecError> {
        self.out.push(if v { TAG_TRUE } else { TAG_FALSE });
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), CodecError> {
        self.put_int(v as i64);
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<(), CodecError> {
        self.put_int(v as i64);
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<(), CodecError> {
        self.put_int(v as i64);
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), CodecError> {
        self.put_int(v);
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), CodecError> {
        self.put_uint(v as u64);
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<(), CodecError> {
        self.put_uint(v as u64);
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<(), CodecError> {
        self.put_uint(v as u64);
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), CodecError> {
        self.put_uint(v);
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), CodecError> {
        self.out.push(TAG_F32);
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), CodecError> {
        self.out.push(TAG_F64);
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), CodecError> {
        self.out.push(TAG_CHAR);
        self.put_varint(v as u64);
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), CodecError> {
        self.out.push(TAG_STR);
        self.put_varint(v.len() as u64);
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), CodecError> {
        self.out.push(TAG_BYTES);
        self.put_varint(v.len() as u64);
        self.out.extend_from_slice(v);
        Ok(())
    }
    fn serialize_none(self) -> Result<(), CodecError> {
        self.out.push(TAG_NONE);
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), CodecError> {
        self.out.push(TAG_SOME);
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), CodecError> {
        self.out.push(TAG_UNIT);
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), CodecError> {
        self.serialize_unit()
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), CodecError> {
        self.out.push(TAG_ENUM);
        self.put_varint(variant_index as u64);
        self.serialize_unit()
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        self.out.push(TAG_ENUM);
        self.put_varint(variant_index as u64);
        value.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or(CodecError::UnsizedSequence)?;
        self.put_seq_header(len);
        Ok(self)
    }
    fn serialize_tuple(self, len: usize) -> Result<Self, CodecError> {
        self.put_seq_header(len);
        Ok(self)
    }
    fn serialize_tuple_struct(self, _name: &'static str, len: usize) -> Result<Self, CodecError> {
        self.put_seq_header(len);
        Ok(self)
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        len: usize,
    ) -> Result<Self, CodecError> {
        self.out.push(TAG_ENUM);
        self.put_varint(variant_index as u64);
        self.put_seq_header(len);
        Ok(self)
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or(CodecError::UnsizedSequence)?;
        self.out.push(TAG_MAP);
        self.put_varint(len as u64);
        Ok(self)
    }
    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<Self, CodecError> {
        self.put_seq_header(len);
        Ok(self)
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        len: usize,
    ) -> Result<Self, CodecError> {
        self.out.push(TAG_ENUM);
        self.put_varint(variant_index as u64);
        self.put_seq_header(len);
        Ok(self)
    }
}

impl ser::SerializeSeq for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeTuple for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeTupleStruct for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeTupleVariant for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeMap for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), CodecError> {
        key.serialize(&mut **self)
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStruct for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Decoder.
// ---------------------------------------------------------------------------

/// Streaming decoder over a framed byte slice; the header is validated on
/// construction.
#[derive(Debug)]
pub struct Decoder<'de> {
    input: &'de [u8],
    pos: usize,
}

impl<'de> Decoder<'de> {
    /// Open a frame, validating magic and version.
    pub fn new(input: &'de [u8]) -> Result<Self, CodecError> {
        if input.len() < 6 {
            return Err(CodecError::Eof);
        }
        if input[..4] != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let found = u16::from_le_bytes([input[4], input[5]]);
        if found != CODEC_VERSION {
            return Err(CodecError::Version {
                found,
                expected: CODEC_VERSION,
            });
        }
        Ok(Decoder { input, pos: 6 })
    }

    fn byte(&mut self) -> Result<u8, CodecError> {
        let b = *self.input.get(self.pos).ok_or(CodecError::Eof)?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'de [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Eof)?;
        let slice = self.input.get(self.pos..end).ok_or(CodecError::Eof)?;
        self.pos = end;
        Ok(slice)
    }

    fn varint(&mut self) -> Result<u64, CodecError> {
        let mut out = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.byte()?;
            if shift == 63 && byte & 0x7e != 0 {
                // Tenth byte: only bit 0 still fits in a u64.  `<< 63` would
                // silently discard bits 1–6, decoding a different number than
                // was encoded — reject instead of truncating.
                return Err(CodecError::VarintOverflow);
            }
            out |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
        }
        Err(CodecError::VarintOverflow)
    }

    fn zigzag(&mut self) -> Result<i64, CodecError> {
        let raw = self.varint()?;
        Ok(((raw >> 1) as i64) ^ -((raw & 1) as i64))
    }

    fn str_value(&mut self) -> Result<&'de str, CodecError> {
        let len = self.varint()? as usize;
        std::str::from_utf8(self.take(len)?).map_err(|_| CodecError::Utf8)
    }
}

/// Forward a list of no-extra-argument `deserialize_*` methods to
/// `deserialize_any` — the format is self-describing, so the tag in the
/// input decides what gets visited, not the caller's hint.
macro_rules! serde_forward_to_any {
    ($($method:ident)*) => {
        $(
            fn $method<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
                self.deserialize_any(visitor)
            }
        )*
    };
}

/// Hands a pre-read enum variant index to the derive's identifier seed.
struct VariantIndex(u64);

impl<'de> de::Deserializer<'de> for VariantIndex {
    type Error = CodecError;

    fn deserialize_any<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_u64(self.0)
    }

    serde_forward_to_any! {
        deserialize_bool deserialize_i8 deserialize_i16 deserialize_i32 deserialize_i64
        deserialize_u8 deserialize_u16 deserialize_u32 deserialize_u64 deserialize_f32
        deserialize_f64 deserialize_char deserialize_str deserialize_string
        deserialize_bytes deserialize_byte_buf deserialize_option deserialize_unit
        deserialize_seq deserialize_map deserialize_identifier deserialize_ignored_any
    }

    fn deserialize_unit_struct<V: de::Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_any(visitor)
    }
    fn deserialize_newtype_struct<V: de::Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_any(visitor)
    }
    fn deserialize_tuple<V: de::Visitor<'de>>(
        self,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_any(visitor)
    }
    fn deserialize_tuple_struct<V: de::Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_any(visitor)
    }
    fn deserialize_struct<V: de::Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_any(visitor)
    }
    fn deserialize_enum<V: de::Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_any(visitor)
    }
}

impl<'de> de::Deserializer<'de> for &mut Decoder<'de> {
    type Error = CodecError;

    fn deserialize_any<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.byte()? {
            TAG_UNIT => visitor.visit_unit(),
            TAG_FALSE => visitor.visit_bool(false),
            TAG_TRUE => visitor.visit_bool(true),
            TAG_UINT => {
                let v = self.varint()?;
                visitor.visit_u64(v)
            }
            TAG_INT => {
                let v = self.zigzag()?;
                visitor.visit_i64(v)
            }
            TAG_F32 => {
                let bytes: [u8; 4] = self.take(4)?.try_into().expect("take returned 4 bytes");
                visitor.visit_f32(f32::from_le_bytes(bytes))
            }
            TAG_F64 => {
                let bytes: [u8; 8] = self.take(8)?.try_into().expect("take returned 8 bytes");
                visitor.visit_f64(f64::from_le_bytes(bytes))
            }
            TAG_CHAR => {
                let raw = self.varint()?;
                let raw = u32::try_from(raw).map_err(|_| CodecError::BadChar(u32::MAX))?;
                let c = char::from_u32(raw).ok_or(CodecError::BadChar(raw))?;
                visitor.visit_char(c)
            }
            TAG_STR => {
                let s = self.str_value()?;
                visitor.visit_str(s)
            }
            TAG_BYTES => {
                let len = self.varint()? as usize;
                let bytes = self.take(len)?;
                visitor.visit_bytes(bytes)
            }
            TAG_NONE => visitor.visit_none(),
            TAG_SOME => visitor.visit_some(self),
            TAG_SEQ => {
                let len = self.varint()? as usize;
                visitor.visit_seq(SeqReader {
                    de: self,
                    remaining: len,
                })
            }
            TAG_MAP => {
                let len = self.varint()? as usize;
                visitor.visit_map(MapReader {
                    de: self,
                    remaining: len,
                })
            }
            TAG_ENUM => {
                let index = self.varint()?;
                visitor.visit_enum(EnumReader { de: self, index })
            }
            found => Err(CodecError::Tag {
                found,
                expected: "a value tag",
            }),
        }
    }

    serde_forward_to_any! {
        deserialize_bool deserialize_i8 deserialize_i16 deserialize_i32 deserialize_i64
        deserialize_u8 deserialize_u16 deserialize_u32 deserialize_u64 deserialize_f32
        deserialize_f64 deserialize_char deserialize_str deserialize_string
        deserialize_bytes deserialize_byte_buf deserialize_option deserialize_unit
        deserialize_seq deserialize_map deserialize_identifier deserialize_ignored_any
    }

    fn deserialize_unit_struct<V: de::Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_any(visitor)
    }
    fn deserialize_newtype_struct<V: de::Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        // Newtype structs are transparent on the wire.
        visitor.visit_newtype_struct(self)
    }
    fn deserialize_tuple<V: de::Visitor<'de>>(
        self,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_any(visitor)
    }
    fn deserialize_tuple_struct<V: de::Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_any(visitor)
    }
    fn deserialize_struct<V: de::Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_any(visitor)
    }
    fn deserialize_enum<V: de::Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_any(visitor)
    }
}

struct SeqReader<'a, 'de> {
    de: &'a mut Decoder<'de>,
    remaining: usize,
}

impl<'de> de::SeqAccess<'de> for SeqReader<'_, 'de> {
    type Error = CodecError;
    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct MapReader<'a, 'de> {
    de: &'a mut Decoder<'de>,
    remaining: usize,
}

impl<'de> de::MapAccess<'de> for MapReader<'_, 'de> {
    type Error = CodecError;
    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, CodecError> {
        seed.deserialize(&mut *self.de)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumReader<'a, 'de> {
    de: &'a mut Decoder<'de>,
    index: u64,
}

impl<'de, 'a> de::EnumAccess<'de> for EnumReader<'a, 'de> {
    type Error = CodecError;
    type Variant = VariantReader<'a, 'de>;
    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), CodecError> {
        let value = seed.deserialize(VariantIndex(self.index))?;
        Ok((value, VariantReader { de: self.de }))
    }
}

struct VariantReader<'a, 'de> {
    de: &'a mut Decoder<'de>,
}

impl<'de> de::VariantAccess<'de> for VariantReader<'_, 'de> {
    type Error = CodecError;
    fn unit_variant(self) -> Result<(), CodecError> {
        <()>::deserialize(&mut *self.de)
    }
    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, CodecError> {
        seed.deserialize(&mut *self.de)
    }
    fn tuple_variant<V: de::Visitor<'de>>(
        self,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_any(&mut *self.de, visitor)
    }
    fn struct_variant<V: de::Visitor<'de>>(
        self,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_any(&mut *self.de, visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;
    use std::time::Duration;

    fn round_trip<T>(value: &T) -> T
    where
        T: Serialize + de::DeserializeOwned + std::fmt::Debug + PartialEq,
    {
        let bytes = to_bytes(value).expect("encode");
        let back: T = from_bytes(&bytes).expect("decode");
        assert_eq!(&back, value);
        back
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Nested {
        id: u64,
        label: String,
        weight: f64,
        tags: Vec<String>,
        extra: Option<Box<Nested>>,
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    enum Shape {
        Unit,
        Newtype(u32),
        Tuple(i64, String),
        Struct { x: f64, y: Vec<u8> },
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(&true);
        round_trip(&false);
        round_trip(&0u64);
        round_trip(&u64::MAX);
        round_trip(&-1i64);
        round_trip(&i64::MIN);
        round_trip(&3.5f64);
        round_trip(&-0.25f32);
        round_trip(&'γ');
        round_trip(&String::from("wire"));
        round_trip(&String::new());
        round_trip(&());
        round_trip(&Some(7usize));
        round_trip(&Option::<usize>::None);
    }

    #[test]
    fn containers_round_trip() {
        round_trip(&vec![1u32, 2, 3]);
        round_trip(&Vec::<String>::new());
        round_trip(&(1u8, String::from("two"), 3.0f64));
        let mut map = BTreeMap::new();
        map.insert(String::from("a"), vec![1u64]);
        map.insert(String::from("b"), vec![]);
        round_trip(&map);
        round_trip(&Duration::from_nanos(1_234_567_891));
    }

    #[test]
    fn structs_and_enums_round_trip() {
        round_trip(&Nested {
            id: 42,
            label: String::from("γ-block"),
            weight: -1.5,
            tags: vec![String::from("a"), String::from("b")],
            extra: Some(Box::new(Nested {
                id: 7,
                label: String::new(),
                weight: 0.0,
                tags: vec![],
                extra: None,
            })),
        });
        round_trip(&Shape::Unit);
        round_trip(&Shape::Newtype(9));
        round_trip(&Shape::Tuple(-3, String::from("t")));
        round_trip(&Shape::Struct {
            x: 2.25,
            y: vec![0, 255],
        });
        round_trip(&vec![Shape::Unit, Shape::Newtype(1), Shape::Unit]);
    }

    #[test]
    fn header_is_validated() {
        let bytes = to_bytes(&1u64).unwrap();
        assert_eq!(&bytes[..4], b"MLNW");
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), CODEC_VERSION);

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(from_bytes::<u64>(&bad_magic), Err(CodecError::BadMagic));

        let mut bad_version = bytes.clone();
        bad_version[4] = 0xFF;
        assert!(matches!(
            from_bytes::<u64>(&bad_version),
            Err(CodecError::Version { .. })
        ));

        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            from_bytes::<u64>(&trailing),
            Err(CodecError::Trailing { .. })
        ));

        assert_eq!(from_bytes::<u64>(&bytes[..5]), Err(CodecError::Eof));
    }

    #[test]
    fn truncated_payloads_error_not_panic() {
        let bytes = to_bytes(&vec![String::from("abc"); 3]).unwrap();
        for cut in 6..bytes.len() {
            assert!(from_bytes::<Vec<String>>(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let value = Nested {
            id: 1,
            label: String::from("same"),
            weight: 0.5,
            tags: vec![String::from("x")],
            extra: None,
        };
        assert_eq!(to_bytes(&value).unwrap(), to_bytes(&value).unwrap());
    }

    /// A raw frame whose payload is `TAG_UINT` followed by `varint_bytes`
    /// verbatim — lets the fixtures drive the decoder with hand-built
    /// (including invalid) varints.
    fn uint_frame(varint_bytes: &[u8]) -> Vec<u8> {
        let mut frame = Vec::with_capacity(7 + varint_bytes.len());
        frame.extend_from_slice(&MAGIC);
        frame.extend_from_slice(&CODEC_VERSION.to_le_bytes());
        frame.push(TAG_UINT);
        frame.extend_from_slice(varint_bytes);
        frame
    }

    #[test]
    fn ten_byte_varint_boundary() {
        // u64::MAX is the largest canonical ten-byte varint: nine 0xFF bytes
        // carry bits 0..=62, the tenth byte carries bit 63 alone.
        let mut max = vec![0xFFu8; 9];
        max.push(0x01);
        assert_eq!(from_bytes::<u64>(&uint_frame(&max)), Ok(u64::MAX));
        assert_eq!(to_bytes(&u64::MAX).unwrap(), uint_frame(&max));

        // Payload bits above bit 63 must be rejected: `<< 63` would shift
        // them off the end of the u64 and decode a silently different
        // number than was encoded.
        for tenth in [0x02u8, 0x03, 0x40, 0x7e, 0x7f] {
            let mut bytes = vec![0xFFu8; 9];
            bytes.push(tenth);
            assert_eq!(
                from_bytes::<u64>(&uint_frame(&bytes)),
                Err(CodecError::VarintOverflow),
                "tenth byte {tenth:#04x} must overflow"
            );
        }

        // A continuation bit on the tenth byte can never finish a u64.
        assert_eq!(
            from_bytes::<u64>(&uint_frame(&[0xFF; 10])),
            Err(CodecError::VarintOverflow)
        );
        assert_eq!(
            from_bytes::<u64>(&uint_frame(&[0xFF; 11])),
            Err(CodecError::VarintOverflow)
        );

        // Truncation inside the varint is Eof, never a panic or a zero.
        for cut in 0..9 {
            assert_eq!(
                from_bytes::<u64>(&uint_frame(&vec![0xFFu8; cut])),
                Err(CodecError::Eof),
                "cut after {cut} continuation bytes"
            );
        }
    }

    /// Decode `bytes` as several unrelated target types.  The only
    /// requirement is a typed `Result` back — never a panic, never an abort.
    fn decode_all(bytes: &[u8]) {
        let _ = from_bytes::<u64>(bytes);
        let _ = from_bytes::<i64>(bytes);
        let _ = from_bytes::<String>(bytes);
        let _ = from_bytes::<Vec<u8>>(bytes);
        let _ = from_bytes::<Nested>(bytes);
        let _ = from_bytes::<Shape>(bytes);
        let _ = from_bytes::<BTreeMap<String, u64>>(bytes);
    }

    #[test]
    fn non_canonical_varints_decode_without_panic() {
        // Redundant continuation padding is non-canonical but harmless: the
        // decoder either accepts it (same value) or returns a typed error.
        assert_eq!(from_bytes::<u64>(&uint_frame(&[0x80, 0x00])), Ok(0));
        assert_eq!(from_bytes::<u64>(&uint_frame(&[0x81, 0x00])), Ok(1));
        decode_all(&uint_frame(&[0x80, 0x80, 0x80, 0x00]));
    }

    proptest! {
        #[test]
        fn varint_round_trip_is_canonical(
            values in proptest::collection::vec(0u64..u64::MAX, 1..24),
        ) {
            for &x in &values {
                let bytes = to_bytes(&x).unwrap();
                prop_assert_eq!(from_bytes::<u64>(&bytes), Ok(x));
                // Canonical means minimal: header (6) + tag (1) + the
                // fewest LEB128 bytes that hold x's significant bits.
                let bits = (64 - x.leading_zeros()) as usize;
                prop_assert_eq!(bytes.len(), 7 + bits.div_ceil(7).max(1), "x = {}", x);
            }
        }

        #[test]
        fn zigzag_round_trips(
            values in proptest::collection::vec(i64::MIN..i64::MAX, 1..24),
        ) {
            for &x in &values {
                let bytes = to_bytes(&x).unwrap();
                prop_assert_eq!(from_bytes::<i64>(&bytes), Ok(x));
            }
        }

        #[test]
        fn decoder_survives_mangled_frames(
            garbage in proptest::collection::vec(0usize..256, 0..64),
            cut in 0usize..1024,
            flip in 0usize..4096,
        ) {
            // Raw garbage: usually bad magic, sometimes a valid header with
            // nonsense tags behind it.
            let raw: Vec<u8> = garbage.iter().map(|&b| b as u8).collect();
            decode_all(&raw);
            let mut framed = uint_frame(&[]);
            framed.truncate(6);
            framed.extend_from_slice(&raw);
            decode_all(&framed);

            // A valid frame, truncated at an arbitrary byte and with an
            // arbitrary bit flipped.
            let frame = to_bytes(&Nested {
                id: u64::MAX,
                label: String::from("fuzz-γ"),
                weight: -0.5,
                tags: vec![String::from("a"), String::new()],
                extra: Some(Box::new(Nested {
                    id: 0,
                    label: String::from("inner"),
                    weight: 2.0,
                    tags: vec![],
                    extra: None,
                })),
            })
            .unwrap();
            decode_all(&frame[..cut % (frame.len() + 1)]);
            let mut flipped = frame.clone();
            let pos = flip % (flipped.len() * 8);
            flipped[pos / 8] ^= 1 << (pos % 8);
            decode_all(&flipped);
        }
    }
}
