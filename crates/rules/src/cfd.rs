//! Conditional functional dependencies (CFDs): an FD that only applies to
//! tuples matching a constant pattern, and/or that forces constant values in
//! its consequent.
//!
//! The paper's example r3 is `HN("ELIZA"), CT("BOAZ") ⇒ PN("2567688400")`:
//! a hospital named ELIZA in city BOAZ must have that exact phone number.

use dataset::{Dataset, Schema, Tuple, ValueId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One clause of a CFD: an attribute that is either bound to a constant or
/// left as a variable (`_` in the CFD pattern-tableau notation).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CfdClause {
    /// The attribute name.
    pub attr: String,
    /// `Some(v)` if the clause requires/forces the constant `v`, `None` for a
    /// variable clause (behaves like a plain FD attribute).
    pub constant: Option<String>,
}

impl CfdClause {
    /// A variable clause (`attr = _`).
    pub fn variable(attr: impl Into<String>) -> Self {
        CfdClause {
            attr: attr.into(),
            constant: None,
        }
    }

    /// A constant clause (`attr = value`).
    pub fn constant(attr: impl Into<String>, value: impl Into<String>) -> Self {
        CfdClause {
            attr: attr.into(),
            constant: Some(value.into()),
        }
    }

    /// Whether a tuple matches this clause (variable clauses match anything).
    pub fn matches(&self, schema: &Schema, tuple: &Tuple) -> bool {
        match &self.constant {
            None => true,
            Some(v) => {
                let id = schema.attr_id(&self.attr).expect("validated attribute");
                tuple.value(id) == v
            }
        }
    }
}

impl fmt::Display for CfdClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.constant {
            Some(v) => write!(f, "{}=\"{}\"", self.attr, v),
            None => write!(f, "{}", self.attr),
        }
    }
}

/// A conditional functional dependency: `conditions ⇒ consequents`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConditionalFd {
    conditions: Vec<CfdClause>,
    consequents: Vec<CfdClause>,
}

impl ConditionalFd {
    /// Create a CFD.
    ///
    /// # Panics
    /// Panics if either side is empty.
    pub fn new(conditions: Vec<CfdClause>, consequents: Vec<CfdClause>) -> Self {
        assert!(
            !conditions.is_empty(),
            "CFD must have a non-empty condition part"
        );
        assert!(
            !consequents.is_empty(),
            "CFD must have a non-empty consequent part"
        );
        ConditionalFd {
            conditions,
            consequents,
        }
    }

    /// The condition (reason-part) clauses.
    pub fn conditions(&self) -> &[CfdClause] {
        &self.conditions
    }

    /// The consequent (result-part) clauses.
    pub fn consequents(&self) -> &[CfdClause] {
        &self.consequents
    }

    /// Whether all attributes exist in `schema`.
    pub fn is_valid_for(&self, schema: &Schema) -> bool {
        self.conditions
            .iter()
            .chain(self.consequents.iter())
            .all(|c| schema.attr_id(&c.attr).is_some())
    }

    /// Whether `tuple` is *relevant* to this CFD, i.e. whether it should be
    /// placed in the CFD's block of the MLN index.
    ///
    /// Following the paper's Figure 2 (block B3 of rule r3 contains t3–t6 but
    /// not t1/t2): a tuple is relevant when it matches **at least one**
    /// constant clause of the condition part, or when the condition part has
    /// no constant clauses at all (a pure variable CFD behaves like an FD).
    /// Matching *all* constants is not required — a tuple with a dirty value
    /// on one conditioned attribute (t3's CT="DOTHAN") must still enter the
    /// block so the cleaning stage can repair it.
    pub fn is_relevant(&self, schema: &Schema, tuple: &Tuple) -> bool {
        let constants: Vec<&CfdClause> = self
            .conditions
            .iter()
            .filter(|c| c.constant.is_some())
            .collect();
        if constants.is_empty() {
            return true;
        }
        constants.iter().any(|c| c.matches(schema, tuple))
    }

    /// Id-row form of [`ConditionalFd::is_relevant`], for callers holding a
    /// raw `Vec<ValueId>` row image (e.g. the pre-update snapshot of a tuple
    /// that has already been overwritten in its dataset) instead of a live
    /// [`Tuple`] view.  `row` must be in schema order and resolve in `pool`.
    pub fn is_relevant_ids(
        &self,
        schema: &Schema,
        pool: &dataset::ValuePool,
        row: &[ValueId],
    ) -> bool {
        let mut any_constant = false;
        for c in &self.conditions {
            if let Some(v) = &c.constant {
                any_constant = true;
                let id = schema.attr_id(&c.attr).expect("validated attribute");
                if pool.resolve(row[id.index()]) == v {
                    return true;
                }
            }
        }
        !any_constant
    }

    /// Whether `tuple` fully matches the constant pattern of the conditions.
    pub fn matches_pattern(&self, schema: &Schema, tuple: &Tuple) -> bool {
        self.conditions.iter().all(|c| c.matches(schema, tuple))
    }

    /// Project a tuple onto the reason-part (condition-attribute) values.
    pub fn reason_values(&self, schema: &Schema, tuple: &Tuple) -> Vec<String> {
        self.conditions
            .iter()
            .map(|c| {
                tuple
                    .value(schema.attr_id(&c.attr).expect("validated attribute"))
                    .to_string()
            })
            .collect()
    }

    /// Project a tuple onto the result-part (consequent-attribute) values.
    pub fn result_values(&self, schema: &Schema, tuple: &Tuple) -> Vec<String> {
        self.consequents
            .iter()
            .map(|c| {
                tuple
                    .value(schema.attr_id(&c.attr).expect("validated attribute"))
                    .to_string()
            })
            .collect()
    }

    /// Project a tuple onto the reason-part value ids (no string cloning).
    pub fn reason_value_ids(&self, schema: &Schema, tuple: &Tuple) -> Vec<ValueId> {
        self.conditions
            .iter()
            .map(|c| tuple.value_id(schema.attr_id(&c.attr).expect("validated attribute")))
            .collect()
    }

    /// Project a tuple onto the result-part value ids (no string cloning).
    pub fn result_value_ids(&self, schema: &Schema, tuple: &Tuple) -> Vec<ValueId> {
        self.consequents
            .iter()
            .map(|c| tuple.value_id(schema.attr_id(&c.attr).expect("validated attribute")))
            .collect()
    }

    /// Whether a single tuple violates the CFD: it matches the full constant
    /// pattern of the conditions but disagrees with a constant consequent.
    pub fn violated_by_tuple(&self, ds: &Dataset, tuple: &Tuple) -> bool {
        if !self.matches_pattern(ds.schema(), tuple) {
            return false;
        }
        self.consequents.iter().any(|c| match &c.constant {
            Some(v) => {
                let id = ds.schema().attr_id(&c.attr).expect("validated attribute");
                tuple.value(id) != v
            }
            None => false,
        })
    }

    /// Whether a pair of tuples violates the CFD's variable (FD-like) part:
    /// both match the constant pattern, agree on all variable condition
    /// attributes, but disagree on a variable consequent attribute.  The
    /// variable-part checks compare interned ids, so both tuples must come
    /// from the same dataset (or datasets sharing a pool snapshot).
    pub fn violated_by_pair(&self, ds: &Dataset, a: &Tuple, b: &Tuple) -> bool {
        let schema = ds.schema();
        if !self.matches_pattern(schema, a) || !self.matches_pattern(schema, b) {
            return false;
        }
        let same_variables = self
            .conditions
            .iter()
            .filter(|c| c.constant.is_none())
            .all(|c| {
                let id = schema.attr_id(&c.attr).expect("validated attribute");
                a.value_id(id) == b.value_id(id)
            });
        if !same_variables {
            return false;
        }
        self.consequents
            .iter()
            .filter(|c| c.constant.is_none())
            .any(|c| {
                let id = schema.attr_id(&c.attr).expect("validated attribute");
                a.value_id(id) != b.value_id(id)
            })
    }
}

impl fmt::Display for ConditionalFd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let lhs: Vec<String> = self.conditions.iter().map(|c| c.to_string()).collect();
        let rhs: Vec<String> = self.consequents.iter().map(|c| c.to_string()).collect();
        write!(f, "CFD: {} -> {}", lhs.join(", "), rhs.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{sample_hospital_dataset, TupleId};

    fn r3() -> ConditionalFd {
        ConditionalFd::new(
            vec![
                CfdClause::constant("HN", "ELIZA"),
                CfdClause::constant("CT", "BOAZ"),
            ],
            vec![CfdClause::constant("PN", "2567688400")],
        )
    }

    #[test]
    fn relevance_matches_paper_block_b3() {
        let ds = sample_hospital_dataset();
        let cfd = r3();
        // t1, t2 (ALABAMA/DOTHAN) are not relevant; t3..t6 are (HN=ELIZA).
        let relevant: Vec<bool> = ds
            .tuples()
            .map(|t| cfd.is_relevant(ds.schema(), &t))
            .collect();
        assert_eq!(relevant, vec![false, false, true, true, true, true]);
    }

    #[test]
    fn pattern_matching() {
        let ds = sample_hospital_dataset();
        let cfd = r3();
        assert!(!cfd.matches_pattern(ds.schema(), &ds.tuple(TupleId(2)))); // t3: CT=DOTHAN
        assert!(cfd.matches_pattern(ds.schema(), &ds.tuple(TupleId(4)))); // t5: ELIZA/BOAZ
    }

    #[test]
    fn single_tuple_violation() {
        let ds = sample_hospital_dataset();
        let cfd = r3();
        // All ELIZA/BOAZ tuples in Table 1 already carry the right phone
        // number, so none violates the constant consequent.
        assert!(ds.tuples().all(|t| !cfd.violated_by_tuple(&ds, &t)));

        // Corrupt t5's phone number and the violation appears.
        let mut dirty = ds.clone();
        let pn = dirty.schema().attr_id("PN").unwrap();
        dirty.set_value(TupleId(4), pn, "1111111111");
        assert!(cfd.violated_by_tuple(&dirty, &dirty.tuple(TupleId(4))));
    }

    #[test]
    fn variable_cfd_behaves_like_fd_on_matching_tuples() {
        let ds = sample_hospital_dataset();
        // "For ELIZA hospitals, CT determines ST".
        let cfd = ConditionalFd::new(
            vec![
                CfdClause::constant("HN", "ELIZA"),
                CfdClause::variable("CT"),
            ],
            vec![CfdClause::variable("ST")],
        );
        let t4 = ds.tuple(TupleId(3)); // ELIZA BOAZ AK
        let t5 = ds.tuple(TupleId(4)); // ELIZA BOAZ AL
        let t1 = ds.tuple(TupleId(0)); // ALABAMA DOTHAN AL
        assert!(cfd.violated_by_pair(&ds, &t4, &t5));
        assert!(
            !cfd.violated_by_pair(&ds, &t1, &t5),
            "t1 does not match the pattern"
        );
    }

    #[test]
    fn reason_result_projection() {
        let ds = sample_hospital_dataset();
        let cfd = r3();
        let t3 = ds.tuple(TupleId(2));
        assert_eq!(cfd.reason_values(ds.schema(), &t3), vec!["ELIZA", "DOTHAN"]);
        assert_eq!(cfd.result_values(ds.schema(), &t3), vec!["2567638410"]);
    }

    #[test]
    fn display() {
        assert_eq!(
            r3().to_string(),
            "CFD: HN=\"ELIZA\", CT=\"BOAZ\" -> PN=\"2567688400\""
        );
    }
}
