//! Denial constraints (DCs): `∀ t, t' ∈ T, ¬(p₁ ∧ p₂ ∧ … ∧ pₙ)` — no pair of
//! tuples may satisfy all predicates simultaneously.
//!
//! The paper's example r2 is `∀t,t' ¬(PN(t)=PN(t') ∧ ST(t)≠ST(t'))`: two
//! tuples with the same phone number must not be in different states.

use crate::ops::Op;
use dataset::{Dataset, Schema, Tuple, ValueId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One predicate of a two-tuple denial constraint, comparing an attribute of
/// the first tuple with an attribute of the second.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DcPredicate {
    /// Attribute of the first tuple.
    pub left_attr: String,
    /// Comparison operator.
    pub op: Op,
    /// Attribute of the second tuple.
    pub right_attr: String,
}

impl DcPredicate {
    /// A predicate comparing the two tuples on the *same* attribute (the
    /// common case, e.g. `PN(t) = PN(t')`).
    pub fn same_attr(attr: impl Into<String>, op: Op) -> Self {
        let attr = attr.into();
        DcPredicate {
            left_attr: attr.clone(),
            op,
            right_attr: attr,
        }
    }

    /// A predicate comparing different attributes of the two tuples.
    pub fn new(left_attr: impl Into<String>, op: Op, right_attr: impl Into<String>) -> Self {
        DcPredicate {
            left_attr: left_attr.into(),
            op,
            right_attr: right_attr.into(),
        }
    }

    /// Evaluate the predicate on a pair of tuples.  Equality-flavoured
    /// operators compare interned ids — both tuples must come from the same
    /// dataset (or datasets sharing a pool snapshot); ordering operators fall
    /// back to the resolved strings.
    pub fn eval(&self, schema: &Schema, a: &Tuple, b: &Tuple) -> bool {
        let l = schema
            .attr_id(&self.left_attr)
            .expect("validated attribute");
        let r = schema
            .attr_id(&self.right_attr)
            .expect("validated attribute");
        match self.op {
            Op::Eq => a.value_id(l) == b.value_id(r),
            Op::Neq => a.value_id(l) != b.value_id(r),
            _ => self.op.eval(a.value(l), b.value(r)),
        }
    }
}

impl fmt::Display for DcPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(t){}{}(t')", self.left_attr, self.op, self.right_attr)
    }
}

/// A two-tuple denial constraint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DenialConstraint {
    predicates: Vec<DcPredicate>,
}

impl DenialConstraint {
    /// Create a DC from its predicates.
    ///
    /// # Panics
    /// Panics with fewer than two predicates: a single-predicate DC has no
    /// reason part under the paper's reason/result split.
    pub fn new(predicates: Vec<DcPredicate>) -> Self {
        assert!(
            predicates.len() >= 2,
            "a denial constraint needs at least two predicates"
        );
        DenialConstraint { predicates }
    }

    /// All predicates in order.
    pub fn predicates(&self) -> &[DcPredicate] {
        &self.predicates
    }

    /// Reason-part predicates: every predicate except the last.
    pub fn reason_predicates(&self) -> &[DcPredicate] {
        &self.predicates[..self.predicates.len() - 1]
    }

    /// The result-part predicate: the last one (paper Section 4).
    pub fn result_predicate(&self) -> &DcPredicate {
        self.predicates.last().expect("at least two predicates")
    }

    /// Attribute names mentioned in the reason part (deduplicated, in order).
    pub fn reason_attrs(&self) -> Vec<String> {
        let mut out = Vec::new();
        for p in self.reason_predicates() {
            for a in [&p.left_attr, &p.right_attr] {
                if !out.contains(a) {
                    out.push(a.clone());
                }
            }
        }
        out
    }

    /// Attribute names mentioned in the result part (deduplicated, in order,
    /// excluding attributes already in the reason part).
    pub fn result_attrs(&self) -> Vec<String> {
        let reason = self.reason_attrs();
        let mut out = Vec::new();
        let p = self.result_predicate();
        for a in [&p.left_attr, &p.right_attr] {
            if !reason.contains(a) && !out.contains(a) {
                out.push(a.clone());
            }
        }
        out
    }

    /// Whether all attributes exist in `schema`.
    pub fn is_valid_for(&self, schema: &Schema) -> bool {
        self.predicates.iter().all(|p| {
            schema.attr_id(&p.left_attr).is_some() && schema.attr_id(&p.right_attr).is_some()
        })
    }

    /// Project a tuple onto the reason-part attribute values.
    pub fn reason_values(&self, schema: &Schema, tuple: &Tuple) -> Vec<String> {
        self.reason_attrs()
            .iter()
            .map(|a| {
                tuple
                    .value(schema.attr_id(a).expect("validated attribute"))
                    .to_string()
            })
            .collect()
    }

    /// Project a tuple onto the result-part attribute values.
    pub fn result_values(&self, schema: &Schema, tuple: &Tuple) -> Vec<String> {
        self.result_attrs()
            .iter()
            .map(|a| {
                tuple
                    .value(schema.attr_id(a).expect("validated attribute"))
                    .to_string()
            })
            .collect()
    }

    /// Project a tuple onto the reason-part value ids (no string cloning).
    pub fn reason_value_ids(&self, schema: &Schema, tuple: &Tuple) -> Vec<ValueId> {
        self.reason_attrs()
            .iter()
            .map(|a| tuple.value_id(schema.attr_id(a).expect("validated attribute")))
            .collect()
    }

    /// Project a tuple onto the result-part value ids (no string cloning).
    pub fn result_value_ids(&self, schema: &Schema, tuple: &Tuple) -> Vec<ValueId> {
        self.result_attrs()
            .iter()
            .map(|a| tuple.value_id(schema.attr_id(a).expect("validated attribute")))
            .collect()
    }

    /// Whether an *ordered* pair of distinct tuples violates the DC (all
    /// predicates evaluate to true).
    pub fn violated_by(&self, ds: &Dataset, a: &Tuple, b: &Tuple) -> bool {
        if a.id() == b.id() {
            return false;
        }
        self.predicates.iter().all(|p| p.eval(ds.schema(), a, b))
    }
}

impl fmt::Display for DenialConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preds: Vec<String> = self.predicates.iter().map(|p| p.to_string()).collect();
        write!(f, "DC: not({})", preds.join(" and "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{sample_hospital_dataset, TupleId};

    fn r2() -> DenialConstraint {
        DenialConstraint::new(vec![
            DcPredicate::same_attr("PN", Op::Eq),
            DcPredicate::same_attr("ST", Op::Neq),
        ])
    }

    #[test]
    fn reason_result_split() {
        let dc = r2();
        assert_eq!(dc.reason_attrs(), vec!["PN"]);
        assert_eq!(dc.result_attrs(), vec!["ST"]);
    }

    #[test]
    fn violation_on_table1() {
        let ds = sample_hospital_dataset();
        let dc = r2();
        let t4 = ds.tuple(TupleId(3)); // PN 2567688400, ST AK
        let t5 = ds.tuple(TupleId(4)); // PN 2567688400, ST AL
        let t1 = ds.tuple(TupleId(0)); // PN 3347938701, ST AL
        assert!(dc.violated_by(&ds, &t4, &t5));
        assert!(dc.violated_by(&ds, &t5, &t4), "symmetric for this DC");
        assert!(!dc.violated_by(&ds, &t1, &t5), "different phone numbers");
        assert!(!dc.violated_by(&ds, &t4, &t4), "never violated with itself");
    }

    #[test]
    fn ordering_predicates() {
        let ds = sample_hospital_dataset();
        // "No two tuples where t has a greater phone number but a smaller state"
        // — a nonsensical rule, but exercises <, > evaluation over pairs.
        let dc = DenialConstraint::new(vec![
            DcPredicate::same_attr("PN", Op::Gt),
            DcPredicate::same_attr("ST", Op::Lt),
        ]);
        assert!(dc.is_valid_for(ds.schema()));
        let t1 = ds.tuple(TupleId(0)); // 3347938701 / AL
        let t4 = ds.tuple(TupleId(3)); // 2567688400 / AK
                                       // t1.PN > t4.PN but t1.ST(AL) > t4.ST(AK) → second predicate false.
        assert!(!dc.violated_by(&ds, &t1, &t4));
        // t4.PN < t1.PN → first predicate false.
        assert!(!dc.violated_by(&ds, &t4, &t1));
    }

    #[test]
    fn cross_attribute_predicate() {
        let p = DcPredicate::new("CT", Op::Eq, "ST");
        let ds = sample_hospital_dataset();
        let t1 = ds.tuple(TupleId(0));
        assert!(!p.eval(ds.schema(), &t1, &t1), "DOTHAN != AL");
    }

    #[test]
    #[should_panic(expected = "at least two predicates")]
    fn single_predicate_panics() {
        DenialConstraint::new(vec![DcPredicate::same_attr("PN", Op::Eq)]);
    }

    #[test]
    fn display() {
        assert_eq!(r2().to_string(), "DC: not(PN(t)=PN(t') and ST(t)!=ST(t'))");
    }
}
