//! Functional dependencies `X → Y`: the values on X uniquely determine the
//! values on Y.

use dataset::{Dataset, Schema, Tuple, ValueId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A functional dependency over attribute names.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionalDependency {
    lhs: Vec<String>,
    rhs: Vec<String>,
}

impl FunctionalDependency {
    /// Create an FD `lhs → rhs`.
    ///
    /// # Panics
    /// Panics if either side is empty; an FD needs at least one attribute on
    /// each side.
    pub fn new<S: AsRef<str>>(lhs: Vec<S>, rhs: Vec<S>) -> Self {
        assert!(!lhs.is_empty(), "FD must have a non-empty left-hand side");
        assert!(!rhs.is_empty(), "FD must have a non-empty right-hand side");
        FunctionalDependency {
            lhs: lhs.into_iter().map(|s| s.as_ref().to_string()).collect(),
            rhs: rhs.into_iter().map(|s| s.as_ref().to_string()).collect(),
        }
    }

    /// Attributes of the reason part (the determinant).
    pub fn lhs(&self) -> &[String] {
        &self.lhs
    }

    /// Attributes of the result part (the dependent).
    pub fn rhs(&self) -> &[String] {
        &self.rhs
    }

    /// Whether all attributes of the FD exist in `schema`.
    pub fn is_valid_for(&self, schema: &Schema) -> bool {
        self.lhs
            .iter()
            .chain(self.rhs.iter())
            .all(|a| schema.attr_id(a).is_some())
    }

    /// Project a tuple onto the reason-part values.
    pub fn reason_values(&self, schema: &Schema, tuple: &Tuple) -> Vec<String> {
        self.lhs
            .iter()
            .map(|a| {
                tuple
                    .value(schema.attr_id(a).expect("validated attribute"))
                    .to_string()
            })
            .collect()
    }

    /// Project a tuple onto the result-part values.
    pub fn result_values(&self, schema: &Schema, tuple: &Tuple) -> Vec<String> {
        self.rhs
            .iter()
            .map(|a| {
                tuple
                    .value(schema.attr_id(a).expect("validated attribute"))
                    .to_string()
            })
            .collect()
    }

    /// Project a tuple onto the reason-part value ids (no string cloning).
    pub fn reason_value_ids(&self, schema: &Schema, tuple: &Tuple) -> Vec<ValueId> {
        self.lhs
            .iter()
            .map(|a| tuple.value_id(schema.attr_id(a).expect("validated attribute")))
            .collect()
    }

    /// Project a tuple onto the result-part value ids (no string cloning).
    pub fn result_value_ids(&self, schema: &Schema, tuple: &Tuple) -> Vec<ValueId> {
        self.rhs
            .iter()
            .map(|a| tuple.value_id(schema.attr_id(a).expect("validated attribute")))
            .collect()
    }

    /// Whether a pair of tuples violates this FD: they agree on every LHS
    /// attribute but disagree on at least one RHS attribute.  Both checks are
    /// pure [`ValueId`] comparisons — no string is touched — so both tuples
    /// must be views of `ds` (or of datasets sharing its pool snapshot); ids
    /// from unrelated pools are not comparable.
    pub fn violated_by(&self, ds: &Dataset, a: &Tuple, b: &Tuple) -> bool {
        let schema = ds.schema();
        let same_lhs = self.lhs.iter().all(|attr| {
            let id = schema.attr_id(attr).expect("validated attribute");
            a.value_id(id) == b.value_id(id)
        });
        if !same_lhs {
            return false;
        }
        self.rhs.iter().any(|attr| {
            let id = schema.attr_id(attr).expect("validated attribute");
            a.value_id(id) != b.value_id(id)
        })
    }
}

impl fmt::Display for FunctionalDependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FD: {} -> {}", self.lhs.join(", "), self.rhs.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{sample_hospital_dataset, TupleId};

    #[test]
    fn reason_and_result_projection() {
        let ds = sample_hospital_dataset();
        let fd = FunctionalDependency::new(vec!["CT"], vec!["ST"]);
        let t4 = ds.tuple(TupleId(3));
        assert_eq!(fd.reason_values(ds.schema(), &t4), vec!["BOAZ"]);
        assert_eq!(fd.result_values(ds.schema(), &t4), vec!["AK"]);
        assert_eq!(
            fd.reason_value_ids(ds.schema(), &t4),
            vec![ds.pool().lookup("BOAZ").unwrap()]
        );
    }

    #[test]
    fn violation_detection_on_table1() {
        let ds = sample_hospital_dataset();
        let fd = FunctionalDependency::new(vec!["CT"], vec!["ST"]);
        let t4 = ds.tuple(TupleId(3)); // BOAZ, AK
        let t5 = ds.tuple(TupleId(4)); // BOAZ, AL
        let t1 = ds.tuple(TupleId(0)); // DOTHAN, AL
        assert!(fd.violated_by(&ds, &t4, &t5));
        assert!(
            !fd.violated_by(&ds, &t1, &t5),
            "different cities cannot violate CT->ST"
        );
        assert!(
            !fd.violated_by(&ds, &t5, &t5),
            "a tuple never violates an FD with itself"
        );
    }

    #[test]
    fn multi_attribute_fd() {
        let ds = sample_hospital_dataset();
        let fd = FunctionalDependency::new(vec!["HN", "CT"], vec!["PN", "ST"]);
        assert!(fd.is_valid_for(ds.schema()));
        let t5 = ds.tuple(TupleId(4));
        assert_eq!(fd.reason_values(ds.schema(), &t5), vec!["ELIZA", "BOAZ"]);
        assert_eq!(fd.result_values(ds.schema(), &t5), vec!["2567688400", "AL"]);
    }

    #[test]
    fn validity_check() {
        let ds = sample_hospital_dataset();
        let bad = FunctionalDependency::new(vec!["NOPE"], vec!["ST"]);
        assert!(!bad.is_valid_for(ds.schema()));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_lhs_panics() {
        FunctionalDependency::new(Vec::<&str>::new(), vec!["ST"]);
    }

    #[test]
    fn display() {
        let fd = FunctionalDependency::new(vec!["CT"], vec!["ST"]);
        assert_eq!(fd.to_string(), "FD: CT -> ST");
    }
}
