//! Integrity-constraint language for MLNClean: functional dependencies (FDs),
//! conditional functional dependencies (CFDs), and denial constraints (DCs).
//!
//! Every rule is split into a **reason part** and a **result part** (the
//! paper's terminology): the reason part determines the result part, i.e. the
//! same reason values may not co-exist with different result values.
//!
//! * For implication formulas (FDs and CFDs) the antecedent is the reason
//!   part and the consequent the result part.
//! * For DCs (`∀ t, t' ¬(p₁ ∧ … ∧ pₙ)`), the last predicate is the result
//!   part and the remaining predicates the reason part.
//!
//! The crate also provides violation detection over a [`dataset::Dataset`]
//! and a small textual parser so rule sets can be written down in experiment
//! configuration and tests.

pub mod cfd;
pub mod dc;
pub mod fd;
pub mod ops;
pub mod parser;
pub mod rule;
pub mod violations;

pub use cfd::{CfdClause, ConditionalFd};
pub use dc::{DcPredicate, DenialConstraint};
pub use fd::FunctionalDependency;
pub use ops::Op;
pub use parser::{parse_rule, parse_rules, ParseError};
pub use rule::{Rule, RuleId, RuleSet};
pub use violations::{detect_violations, violating_cells, Violation, ViolationKind};

/// Build the paper's three running-example rules over the Table 1 hospital
/// schema (`HN`, `CT`, `ST`, `PN`):
///
/// * r1 (FD): `CT → ST`
/// * r2 (DC): `∀t,t' ¬(PN(t)=PN(t') ∧ ST(t)≠ST(t'))`
/// * r3 (CFD): `HN="ELIZA", CT="BOAZ" → PN="2567688400"`
pub fn sample_hospital_rules() -> RuleSet {
    let r1 = Rule::Fd(FunctionalDependency::new(vec!["CT"], vec!["ST"]));
    let r2 = Rule::Dc(DenialConstraint::new(vec![
        DcPredicate::same_attr("PN", Op::Eq),
        DcPredicate::same_attr("ST", Op::Neq),
    ]));
    let r3 = Rule::Cfd(ConditionalFd::new(
        vec![
            CfdClause::constant("HN", "ELIZA"),
            CfdClause::constant("CT", "BOAZ"),
        ],
        vec![CfdClause::constant("PN", "2567688400")],
    ));
    RuleSet::new(vec![r1, r2, r3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::sample_hospital_dataset;

    #[test]
    fn sample_rules_have_expected_shape() {
        let rules = sample_hospital_rules();
        assert_eq!(rules.len(), 3);
        let ds = sample_hospital_dataset();
        for rule in rules.iter() {
            // Every attribute mentioned by the rules exists in the schema.
            for attr in rule.all_attrs() {
                assert!(
                    ds.schema().attr_id(&attr).is_some(),
                    "unknown attribute {attr}"
                );
            }
        }
    }

    #[test]
    fn sample_rules_detect_table1_violations() {
        let rules = sample_hospital_rules();
        let ds = sample_hospital_dataset();
        let violations = detect_violations(&ds, &rules);
        // r1 is violated by (t4, t5)/(t4, t6) pairs on CT=BOAZ; r2 by the
        // same pairs on PN; r3 by t4 (ELIZA/BOAZ but PN matches → actually
        // satisfied) — the exact counts are covered in violations::tests;
        // here we only require that the dirty sample is not violation-free.
        assert!(!violations.is_empty());
    }
}
