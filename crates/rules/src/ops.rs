//! Comparison operators used by denial-constraint predicates.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A binary comparison operator over attribute values.
///
/// Values are compared numerically when both sides parse as numbers and
/// lexicographically otherwise, which matches how denial constraints are
/// usually evaluated over mixed string/numeric data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Equality.
    Eq,
    /// Inequality.
    Neq,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl Op {
    /// Evaluate the operator on two attribute values.
    pub fn eval(self, left: &str, right: &str) -> bool {
        match self {
            Op::Eq => left == right,
            Op::Neq => left != right,
            _ => {
                let ord = compare_values(left, right);
                match self {
                    Op::Lt => ord == std::cmp::Ordering::Less,
                    Op::Le => ord != std::cmp::Ordering::Greater,
                    Op::Gt => ord == std::cmp::Ordering::Greater,
                    Op::Ge => ord != std::cmp::Ordering::Less,
                    Op::Eq | Op::Neq => unreachable!(),
                }
            }
        }
    }

    /// The logically negated operator (`¬(a < b)` ⇔ `a ≥ b`, etc.).
    pub fn negated(self) -> Op {
        match self {
            Op::Eq => Op::Neq,
            Op::Neq => Op::Eq,
            Op::Lt => Op::Ge,
            Op::Le => Op::Gt,
            Op::Gt => Op::Le,
            Op::Ge => Op::Lt,
        }
    }

    /// Parse an operator token (`=`, `==`, `!=`, `<>`, `<`, `<=`, `>`, `>=`).
    pub fn parse(token: &str) -> Option<Op> {
        match token {
            "=" | "==" => Some(Op::Eq),
            "!=" | "<>" => Some(Op::Neq),
            "<" => Some(Op::Lt),
            "<=" => Some(Op::Le),
            ">" => Some(Op::Gt),
            ">=" => Some(Op::Ge),
            _ => None,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Eq => "=",
            Op::Neq => "!=",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Compare two values numerically when possible, lexicographically otherwise.
fn compare_values(left: &str, right: &str) -> std::cmp::Ordering {
    match (left.parse::<f64>(), right.parse::<f64>()) {
        (Ok(l), Ok(r)) => l.partial_cmp(&r).unwrap_or(std::cmp::Ordering::Equal),
        _ => left.cmp(right),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn string_comparisons() {
        assert!(Op::Eq.eval("AL", "AL"));
        assert!(Op::Neq.eval("AL", "AK"));
        assert!(Op::Lt.eval("AK", "AL"));
        assert!(Op::Ge.eval("AL", "AK"));
    }

    #[test]
    fn numeric_comparisons() {
        assert!(Op::Lt.eval("9", "10"), "numeric, not lexicographic");
        assert!(Op::Gt.eval("10.5", "2"));
        assert!(Op::Le.eval("3", "3"));
    }

    #[test]
    fn parse_tokens() {
        assert_eq!(Op::parse("="), Some(Op::Eq));
        assert_eq!(Op::parse("=="), Some(Op::Eq));
        assert_eq!(Op::parse("!="), Some(Op::Neq));
        assert_eq!(Op::parse("<>"), Some(Op::Neq));
        assert_eq!(Op::parse("<="), Some(Op::Le));
        assert_eq!(Op::parse(">="), Some(Op::Ge));
        assert_eq!(Op::parse("~"), None);
    }

    #[test]
    fn display_round_trips_through_parse() {
        for op in [Op::Eq, Op::Neq, Op::Lt, Op::Le, Op::Gt, Op::Ge] {
            assert_eq!(Op::parse(&op.to_string()), Some(op));
        }
    }

    proptest! {
        #[test]
        fn negation_is_involutive(op_idx in 0usize..6) {
            let ops = [Op::Eq, Op::Neq, Op::Lt, Op::Le, Op::Gt, Op::Ge];
            let op = ops[op_idx];
            prop_assert_eq!(op.negated().negated(), op);
        }

        #[test]
        fn negation_flips_evaluation(a in "[0-9a-z]{0,6}", b in "[0-9a-z]{0,6}", op_idx in 0usize..6) {
            let ops = [Op::Eq, Op::Neq, Op::Lt, Op::Le, Op::Gt, Op::Ge];
            let op = ops[op_idx];
            prop_assert_eq!(op.eval(&a, &b), !op.negated().eval(&a, &b));
        }
    }
}
