//! A small textual syntax for writing rule sets in experiment configuration
//! files and tests.
//!
//! ```text
//! # comments start with '#'
//! FD:  CT -> ST
//! FD:  ZIPCode -> City, CountyName
//! CFD: HN="ELIZA", CT="BOAZ" -> PN="2567688400"
//! CFD: Make="acura", Type -> Doors
//! DC:  PN = PN, ST != ST        # ∀t,t' ¬(t.PN = t'.PN ∧ t.ST ≠ t'.ST)
//! ```
//!
//! * FD sides are comma-separated attribute lists.
//! * CFD clauses are `Attr` (variable) or `Attr="constant"` / `Attr=constant`.
//! * DC predicates are `Attr op Attr` comparing the attribute of tuple `t`
//!   (left) with the attribute of tuple `t'` (right); supported operators are
//!   `=`, `!=`, `<`, `<=`, `>`, `>=`.

use crate::cfd::{CfdClause, ConditionalFd};
use crate::dc::{DcPredicate, DenialConstraint};
use crate::fd::FunctionalDependency;
use crate::ops::Op;
use crate::rule::{Rule, RuleSet};
use std::fmt;

/// Parse error with the offending line (1-based) and a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 when parsing a single rule string).
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "rule parse error: {}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Strip a trailing `# comment` that is not inside quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_quotes = false;
    for (idx, c) in line.char_indices() {
        match c {
            '"' => in_quotes = !in_quotes,
            '#' if !in_quotes => return &line[..idx],
            _ => {}
        }
    }
    line
}

/// Parse a single rule of the form `KIND: body`.
pub fn parse_rule(input: &str) -> Result<Rule, ParseError> {
    parse_rule_line(input, 0)
}

fn parse_rule_line(input: &str, line: usize) -> Result<Rule, ParseError> {
    let input = strip_comment(input).trim();
    let (kind, body) = input
        .split_once(':')
        .ok_or_else(|| err(line, "expected 'FD:', 'CFD:' or 'DC:' prefix"))?;
    let body = body.trim();
    match kind.trim().to_ascii_uppercase().as_str() {
        "FD" => parse_fd(body, line),
        "CFD" => parse_cfd(body, line),
        "DC" => parse_dc(body, line),
        other => Err(err(line, format!("unknown rule kind {other:?}"))),
    }
}

/// Parse a whole rule file (one rule per non-empty, non-comment line).
pub fn parse_rules(input: &str) -> Result<RuleSet, ParseError> {
    let mut rules = Vec::new();
    for (idx, raw) in input.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        rules.push(parse_rule_line(line, idx + 1)?);
    }
    Ok(RuleSet::new(rules))
}

fn split_arrow(body: &str, line: usize) -> Result<(&str, &str), ParseError> {
    body.split_once("->")
        .or_else(|| body.split_once('⇒'))
        .ok_or_else(|| err(line, "expected '->' between the two rule sides"))
}

fn parse_attr_list(side: &str, line: usize) -> Result<Vec<String>, ParseError> {
    let attrs: Vec<String> = side
        .split(',')
        .map(|a| a.trim().to_string())
        .filter(|a| !a.is_empty())
        .collect();
    if attrs.is_empty() {
        return Err(err(line, "empty attribute list"));
    }
    if attrs.iter().any(|a| a.contains('=') || a.contains(' ')) {
        return Err(err(
            line,
            "FD attributes must be plain names (no constants)",
        ));
    }
    Ok(attrs)
}

fn parse_fd(body: &str, line: usize) -> Result<Rule, ParseError> {
    let (lhs, rhs) = split_arrow(body, line)?;
    Ok(Rule::Fd(FunctionalDependency::new(
        parse_attr_list(lhs, line)?,
        parse_attr_list(rhs, line)?,
    )))
}

fn parse_cfd_clause(token: &str, line: usize) -> Result<CfdClause, ParseError> {
    let token = token.trim();
    if token.is_empty() {
        return Err(err(line, "empty CFD clause"));
    }
    match token.split_once('=') {
        None => Ok(CfdClause::variable(token)),
        Some((attr, value)) => {
            let attr = attr.trim();
            let value = value.trim().trim_matches('"');
            if attr.is_empty() || value.is_empty() {
                return Err(err(line, format!("malformed CFD clause {token:?}")));
            }
            Ok(CfdClause::constant(attr, value))
        }
    }
}

fn parse_cfd(body: &str, line: usize) -> Result<Rule, ParseError> {
    let (lhs, rhs) = split_arrow(body, line)?;
    let conditions: Result<Vec<_>, _> = lhs
        .split(',')
        .filter(|t| !t.trim().is_empty())
        .map(|t| parse_cfd_clause(t, line))
        .collect();
    let consequents: Result<Vec<_>, _> = rhs
        .split(',')
        .filter(|t| !t.trim().is_empty())
        .map(|t| parse_cfd_clause(t, line))
        .collect();
    let (conditions, consequents) = (conditions?, consequents?);
    if conditions.is_empty() || consequents.is_empty() {
        return Err(err(line, "CFD must have clauses on both sides"));
    }
    Ok(Rule::Cfd(ConditionalFd::new(conditions, consequents)))
}

fn parse_dc_predicate(token: &str, line: usize) -> Result<DcPredicate, ParseError> {
    let token = token.trim();
    // Longest operators first so "!=" is not split as "!" + "=".
    for op_str in ["!=", "<>", "<=", ">=", "==", "=", "<", ">"] {
        if let Some((left, right)) = token.split_once(op_str) {
            let (left, right) = (left.trim(), right.trim());
            if left.is_empty() || right.is_empty() {
                return Err(err(line, format!("malformed DC predicate {token:?}")));
            }
            let op = Op::parse(op_str).expect("operator literal is valid");
            return Ok(DcPredicate::new(left, op, right));
        }
    }
    Err(err(
        line,
        format!("no comparison operator in DC predicate {token:?}"),
    ))
}

fn parse_dc(body: &str, line: usize) -> Result<Rule, ParseError> {
    let predicates: Result<Vec<_>, _> = body
        .split(',')
        .filter(|t| !t.trim().is_empty())
        .map(|t| parse_dc_predicate(t, line))
        .collect();
    let predicates = predicates?;
    if predicates.len() < 2 {
        return Err(err(line, "a DC needs at least two predicates"));
    }
    Ok(Rule::Dc(DenialConstraint::new(predicates)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::RuleId;

    #[test]
    fn parse_fd() {
        let rule = parse_rule("FD: CT -> ST").unwrap();
        assert_eq!(rule.reason_attrs(), vec!["CT"]);
        assert_eq!(rule.result_attrs(), vec!["ST"]);
        let rule = parse_rule("FD: ProviderID -> City, PhoneNumber").unwrap();
        assert_eq!(rule.result_attrs(), vec!["City", "PhoneNumber"]);
    }

    #[test]
    fn parse_cfd_with_constants_and_variables() {
        let rule = parse_rule(r#"CFD: Make="acura", Type -> Doors"#).unwrap();
        match &rule {
            Rule::Cfd(cfd) => {
                assert_eq!(cfd.conditions().len(), 2);
                assert_eq!(cfd.conditions()[0].constant.as_deref(), Some("acura"));
                assert_eq!(cfd.conditions()[1].constant, None);
                assert_eq!(cfd.consequents()[0].constant, None);
            }
            other => panic!("expected CFD, got {other:?}"),
        }
    }

    #[test]
    fn parse_dc_predicates() {
        let rule = parse_rule("DC: PN = PN, ST != ST").unwrap();
        match &rule {
            Rule::Dc(dc) => {
                assert_eq!(dc.predicates().len(), 2);
                assert_eq!(dc.predicates()[0].op, Op::Eq);
                assert_eq!(dc.predicates()[1].op, Op::Neq);
            }
            other => panic!("expected DC, got {other:?}"),
        }
    }

    #[test]
    fn parse_rule_file_with_comments() {
        let text = r#"
            # the paper's running example
            FD: CT -> ST
            DC: PN = PN, ST != ST   # r2
            CFD: HN="ELIZA", CT="BOAZ" -> PN="2567688400"
        "#;
        let rules = parse_rules(text).unwrap();
        assert_eq!(rules.len(), 3);
        assert_eq!(rules.rule(RuleId(0)).kind(), "FD");
        assert_eq!(rules.rule(RuleId(1)).kind(), "DC");
        assert_eq!(rules.rule(RuleId(2)).kind(), "CFD");
        // Should be semantically identical to the hand-built sample rules.
        assert_eq!(rules, crate::sample_hospital_rules());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "FD: CT -> ST\nFD: missing arrow\n";
        let e = parse_rules(text).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("->"));
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let e = parse_rule("UC: A -> B").unwrap_err();
        assert!(e.message.contains("unknown rule kind"));
    }

    #[test]
    fn malformed_dc_is_rejected() {
        assert!(
            parse_rule("DC: PN = PN").is_err(),
            "one predicate is not enough"
        );
        assert!(parse_rule("DC: PN ~ PN, ST != ST").is_err(), "bad operator");
    }

    #[test]
    fn fd_with_constant_is_rejected() {
        assert!(parse_rule(r#"FD: CT="BOAZ" -> ST"#).is_err());
    }
}
