//! The unified [`Rule`] type and [`RuleSet`] collections.

use crate::cfd::ConditionalFd;
use crate::dc::DenialConstraint;
use crate::fd::FunctionalDependency;
use dataset::{Schema, Tuple, ValueId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a rule within a [`RuleSet`] (its position).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RuleId(pub usize);

impl RuleId {
    /// Position of the rule in its rule set.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0 + 1)
    }
}

/// An integrity constraint of any of the three supported kinds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Rule {
    /// Functional dependency.
    Fd(FunctionalDependency),
    /// Conditional functional dependency.
    Cfd(ConditionalFd),
    /// Denial constraint.
    Dc(DenialConstraint),
}

impl Rule {
    /// Short kind name ("FD" / "CFD" / "DC").
    pub fn kind(&self) -> &'static str {
        match self {
            Rule::Fd(_) => "FD",
            Rule::Cfd(_) => "CFD",
            Rule::Dc(_) => "DC",
        }
    }

    /// Attribute names of the reason part, in rule order.
    pub fn reason_attrs(&self) -> Vec<String> {
        match self {
            Rule::Fd(fd) => fd.lhs().to_vec(),
            Rule::Cfd(cfd) => cfd.conditions().iter().map(|c| c.attr.clone()).collect(),
            Rule::Dc(dc) => dc.reason_attrs(),
        }
    }

    /// Attribute names of the result part, in rule order.
    pub fn result_attrs(&self) -> Vec<String> {
        match self {
            Rule::Fd(fd) => fd.rhs().to_vec(),
            Rule::Cfd(cfd) => cfd.consequents().iter().map(|c| c.attr.clone()).collect(),
            Rule::Dc(dc) => dc.result_attrs(),
        }
    }

    /// All attribute names the rule mentions (reason part then result part,
    /// deduplicated).
    pub fn all_attrs(&self) -> Vec<String> {
        let mut out = self.reason_attrs();
        for a in self.result_attrs() {
            if !out.contains(&a) {
                out.push(a);
            }
        }
        out
    }

    /// Whether every attribute the rule mentions exists in `schema`.
    pub fn is_valid_for(&self, schema: &Schema) -> bool {
        match self {
            Rule::Fd(fd) => fd.is_valid_for(schema),
            Rule::Cfd(cfd) => cfd.is_valid_for(schema),
            Rule::Dc(dc) => dc.is_valid_for(schema),
        }
    }

    /// Whether `tuple` should be placed in this rule's block of the MLN
    /// index.  FDs and DCs always apply; CFDs apply to tuples relevant to
    /// their constant pattern (see [`ConditionalFd::is_relevant`]).
    pub fn is_relevant(&self, schema: &Schema, tuple: &Tuple) -> bool {
        match self {
            Rule::Fd(_) | Rule::Dc(_) => true,
            Rule::Cfd(cfd) => cfd.is_relevant(schema, tuple),
        }
    }

    /// Id-row form of [`Rule::is_relevant`]: decide block membership from a
    /// raw schema-ordered `ValueId` row resolved through `pool`.  Used by the
    /// incremental index maintenance to evaluate the *pre-update* state of a
    /// tuple whose dataset cells have already been overwritten.
    pub fn is_relevant_ids(
        &self,
        schema: &Schema,
        pool: &dataset::ValuePool,
        row: &[ValueId],
    ) -> bool {
        match self {
            Rule::Fd(_) | Rule::Dc(_) => true,
            Rule::Cfd(cfd) => cfd.is_relevant_ids(schema, pool, row),
        }
    }

    /// Project a tuple onto its reason-part values (the `vl` of Algorithm 1).
    pub fn reason_values(&self, schema: &Schema, tuple: &Tuple) -> Vec<String> {
        match self {
            Rule::Fd(fd) => fd.reason_values(schema, tuple),
            Rule::Cfd(cfd) => cfd.reason_values(schema, tuple),
            Rule::Dc(dc) => dc.reason_values(schema, tuple),
        }
    }

    /// Project a tuple onto its result-part values (the `vr` of Algorithm 1).
    pub fn result_values(&self, schema: &Schema, tuple: &Tuple) -> Vec<String> {
        match self {
            Rule::Fd(fd) => fd.result_values(schema, tuple),
            Rule::Cfd(cfd) => cfd.result_values(schema, tuple),
            Rule::Dc(dc) => dc.result_values(schema, tuple),
        }
    }

    /// Project a tuple onto its reason-part value ids — the interned
    /// counterpart of [`Rule::reason_values`], used on every hot grouping
    /// path (index build, violation bucketing, constraint statistics).
    pub fn reason_value_ids(&self, schema: &Schema, tuple: &Tuple) -> Vec<ValueId> {
        match self {
            Rule::Fd(fd) => fd.reason_value_ids(schema, tuple),
            Rule::Cfd(cfd) => cfd.reason_value_ids(schema, tuple),
            Rule::Dc(dc) => dc.reason_value_ids(schema, tuple),
        }
    }

    /// Project a tuple onto its result-part value ids.
    pub fn result_value_ids(&self, schema: &Schema, tuple: &Tuple) -> Vec<ValueId> {
        match self {
            Rule::Fd(fd) => fd.result_value_ids(schema, tuple),
            Rule::Cfd(cfd) => cfd.result_value_ids(schema, tuple),
            Rule::Dc(dc) => dc.result_value_ids(schema, tuple),
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rule::Fd(fd) => fd.fmt(f),
            Rule::Cfd(cfd) => cfd.fmt(f),
            Rule::Dc(dc) => dc.fmt(f),
        }
    }
}

/// An ordered collection of rules; the block layer of the MLN index has one
/// block per rule in the set.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

impl RuleSet {
    /// Create a rule set.
    pub fn new(rules: Vec<Rule>) -> Self {
        RuleSet { rules }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The rule with the given id.
    pub fn rule(&self, id: RuleId) -> &Rule {
        &self.rules[id.0]
    }

    /// Iterate over rules in order.
    pub fn iter(&self) -> impl Iterator<Item = &Rule> {
        self.rules.iter()
    }

    /// Iterate over (id, rule) pairs.
    pub fn iter_with_ids(&self) -> impl Iterator<Item = (RuleId, &Rule)> {
        self.rules.iter().enumerate().map(|(i, r)| (RuleId(i), r))
    }

    /// Add a rule, returning its id.
    pub fn push(&mut self, rule: Rule) -> RuleId {
        let id = RuleId(self.rules.len());
        self.rules.push(rule);
        id
    }

    /// Whether every rule is valid for `schema`.
    pub fn is_valid_for(&self, schema: &Schema) -> bool {
        self.rules.iter().all(|r| r.is_valid_for(schema))
    }

    /// The union of all attributes mentioned by any rule — error injection is
    /// restricted to these attributes in the paper's protocol.
    pub fn constrained_attrs(&self) -> Vec<String> {
        let mut out = Vec::new();
        for rule in &self.rules {
            for a in rule.all_attrs() {
                if !out.contains(&a) {
                    out.push(a);
                }
            }
        }
        out
    }
}

impl FromIterator<Rule> for RuleSet {
    fn from_iter<I: IntoIterator<Item = Rule>>(iter: I) -> Self {
        RuleSet::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample_hospital_rules;
    use dataset::sample_hospital_dataset;

    #[test]
    fn reason_result_attrs_per_rule_kind() {
        let rules = sample_hospital_rules();
        assert_eq!(rules.rule(RuleId(0)).reason_attrs(), vec!["CT"]);
        assert_eq!(rules.rule(RuleId(0)).result_attrs(), vec!["ST"]);
        assert_eq!(rules.rule(RuleId(1)).reason_attrs(), vec!["PN"]);
        assert_eq!(rules.rule(RuleId(1)).result_attrs(), vec!["ST"]);
        assert_eq!(rules.rule(RuleId(2)).reason_attrs(), vec!["HN", "CT"]);
        assert_eq!(rules.rule(RuleId(2)).result_attrs(), vec!["PN"]);
    }

    #[test]
    fn kinds() {
        let rules = sample_hospital_rules();
        let kinds: Vec<&str> = rules.iter().map(|r| r.kind()).collect();
        assert_eq!(kinds, vec!["FD", "DC", "CFD"]);
    }

    #[test]
    fn constrained_attrs_union() {
        let rules = sample_hospital_rules();
        let attrs = rules.constrained_attrs();
        assert_eq!(attrs.len(), 4);
        for a in ["CT", "ST", "PN", "HN"] {
            assert!(attrs.iter().any(|x| x == a), "missing {a}");
        }
    }

    #[test]
    fn relevance_differs_only_for_cfds() {
        let rules = sample_hospital_rules();
        let ds = sample_hospital_dataset();
        let t1 = ds.tuple(dataset::TupleId(0));
        assert!(rules.rule(RuleId(0)).is_relevant(ds.schema(), &t1));
        assert!(rules.rule(RuleId(1)).is_relevant(ds.schema(), &t1));
        assert!(!rules.rule(RuleId(2)).is_relevant(ds.schema(), &t1));
    }

    #[test]
    fn id_row_relevance_agrees_with_the_tuple_view() {
        let rules = sample_hospital_rules();
        let ds = sample_hospital_dataset();
        for rule in rules.iter() {
            for t in ds.tuples() {
                let row = ds.row_ids(t.id());
                assert_eq!(
                    rule.is_relevant_ids(ds.schema(), ds.pool(), &row),
                    rule.is_relevant(ds.schema(), &t),
                    "{rule} diverged on {:?}",
                    t.id()
                );
            }
        }
    }

    #[test]
    fn rule_ids_display_one_based() {
        assert_eq!(RuleId(0).to_string(), "r1");
        assert_eq!(RuleId(2).to_string(), "r3");
    }

    #[test]
    fn push_and_from_iterator() {
        let mut rs = RuleSet::default();
        assert!(rs.is_empty());
        let id = rs.push(Rule::Fd(FunctionalDependency::new(vec!["a"], vec!["b"])));
        assert_eq!(id, RuleId(0));
        assert_eq!(rs.len(), 1);

        let collected: RuleSet = sample_hospital_rules().iter().cloned().collect();
        assert_eq!(collected.len(), 3);
    }
}
