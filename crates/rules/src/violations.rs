//! Violation detection: find the schema-level errors — tuples (or tuple
//! pairs) that break an integrity constraint.
//!
//! Detection is hash-partitioned: tuples are bucketed by their reason-part
//! values (for FDs/CFDs) or the reason attributes (for DCs) before pairwise
//! checks, so an FD over a dataset with many distinct reason values is far
//! cheaper than the naive `O(n²)` scan.

use crate::rule::{Rule, RuleId, RuleSet};
use dataset::{CellRef, Dataset, TupleId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// Which flavour of violation was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViolationKind {
    /// Two tuples jointly break the rule (FD / variable CFD / DC).
    Pair,
    /// A single tuple breaks a constant CFD consequent.
    Single,
}

/// A detected violation: the rule, the participating tuples, and the cells of
/// the rule's result part (the usual repair targets).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// The violated rule.
    pub rule: RuleId,
    /// Whether the violation involves one tuple or a pair.
    pub kind: ViolationKind,
    /// Participating tuples (one or two).
    pub tuples: Vec<TupleId>,
    /// Result-part cells of the participating tuples.
    pub cells: Vec<CellRef>,
}

/// Detect every violation of `rules` in `ds`.
pub fn detect_violations(ds: &Dataset, rules: &RuleSet) -> Vec<Violation> {
    let mut out = Vec::new();
    for (rule_id, rule) in rules.iter_with_ids() {
        match rule {
            Rule::Fd(fd) => {
                detect_grouped_pairs(ds, rule_id, rule, &mut out, |a, b| fd.violated_by(ds, a, b));
            }
            Rule::Cfd(cfd) => {
                // Single-tuple violations of constant consequents.
                for t in ds.tuples() {
                    if cfd.violated_by_tuple(ds, &t) {
                        out.push(Violation {
                            rule: rule_id,
                            kind: ViolationKind::Single,
                            tuples: vec![t.id()],
                            cells: result_cells(ds, rule, &[t.id()]),
                        });
                    }
                }
                // Pairwise violations of the variable part.
                detect_grouped_pairs(ds, rule_id, rule, &mut out, |a, b| {
                    cfd.violated_by_pair(ds, a, b)
                });
            }
            Rule::Dc(dc) => {
                detect_grouped_pairs(ds, rule_id, rule, &mut out, |a, b| dc.violated_by(ds, a, b));
            }
        }
    }
    out
}

/// Group tuples by their reason-part values and run the pairwise check within
/// each group.  All three rule kinds only relate tuples agreeing on the
/// reason part (for the equality-style DCs of the paper the reason attributes
/// play that role), so bucketing is sound for them; the fallback of a whole-
/// dataset bucket keeps correctness for exotic DCs whose reason predicates
/// are not equalities.
fn detect_grouped_pairs<F>(
    ds: &Dataset,
    rule_id: RuleId,
    rule: &Rule,
    out: &mut Vec<Violation>,
    violates: F,
) where
    F: Fn(&dataset::Tuple, &dataset::Tuple) -> bool,
{
    let schema = ds.schema();
    let groupable = match rule {
        Rule::Fd(_) | Rule::Cfd(_) => true,
        Rule::Dc(dc) => dc
            .reason_predicates()
            .iter()
            .all(|p| p.op == crate::ops::Op::Eq && p.left_attr == p.right_attr),
    };

    // Buckets are keyed on interned ids: building a key is a handful of u32
    // copies per tuple instead of string clones, and hashing is integer work.
    let mut buckets: HashMap<Vec<dataset::ValueId>, Vec<TupleId>> = HashMap::new();
    for t in ds.tuples() {
        if !rule.is_relevant(schema, &t) {
            continue;
        }
        let key = if groupable {
            rule.reason_value_ids(schema, &t)
        } else {
            Vec::new()
        };
        buckets.entry(key).or_default().push(t.id());
    }

    for ids in buckets.values() {
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                let a = ds.tuple(ids[i]);
                let b = ds.tuple(ids[j]);
                if violates(&a, &b) || violates(&b, &a) {
                    out.push(Violation {
                        rule: rule_id,
                        kind: ViolationKind::Pair,
                        tuples: vec![ids[i], ids[j]],
                        cells: result_cells(ds, rule, &[ids[i], ids[j]]),
                    });
                }
            }
        }
    }
}

/// The result-part cells of the given tuples under `rule`.
fn result_cells(ds: &Dataset, rule: &Rule, tuples: &[TupleId]) -> Vec<CellRef> {
    let schema = ds.schema();
    let mut cells = Vec::new();
    for &t in tuples {
        for attr in rule.result_attrs() {
            if let Some(id) = schema.attr_id(&attr) {
                cells.push(CellRef::new(t, id));
            }
        }
    }
    cells
}

/// The set of cells involved in any violation — a simple constraint-based
/// error detector (this is what HoloClean-style systems use as their "noisy
/// cells" input).
pub fn violating_cells(ds: &Dataset, rules: &RuleSet) -> BTreeSet<CellRef> {
    detect_violations(ds, rules)
        .into_iter()
        .flat_map(|v| v.cells)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample_hospital_rules;
    use dataset::sample_hospital_dataset;

    #[test]
    fn table1_violations() {
        let ds = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let violations = detect_violations(&ds, &rules);

        // r1 (CT -> ST): BOAZ maps to both AK (t4) and AL (t5, t6) → pairs
        // (t4,t5) and (t4,t6).
        let r1: Vec<&Violation> = violations.iter().filter(|v| v.rule == RuleId(0)).collect();
        assert_eq!(r1.len(), 2);

        // r2 (same PN → same ST): PN 2567688400 appears with AK and AL →
        // pairs (t4,t5) and (t4,t6).
        let r2: Vec<&Violation> = violations.iter().filter(|v| v.rule == RuleId(1)).collect();
        assert_eq!(r2.len(), 2);

        // r3 (ELIZA ∧ BOAZ ⇒ 2567688400): all matching tuples already carry
        // that phone number, so no violation.
        let r3: Vec<&Violation> = violations.iter().filter(|v| v.rule == RuleId(2)).collect();
        assert!(r3.is_empty());
    }

    #[test]
    fn violating_cells_point_at_result_attrs() {
        let ds = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let cells = violating_cells(&ds, &rules);
        let st = ds.schema().attr_id("ST").unwrap();
        // The ST column of t4, t5, t6 is implicated by r1/r2 violations.
        assert!(cells.contains(&CellRef::new(TupleId(3), st)));
        assert!(cells.contains(&CellRef::new(TupleId(4), st)));
        assert!(cells.contains(&CellRef::new(TupleId(5), st)));
        // t1 is not implicated at all.
        assert!(!cells.iter().any(|c| c.tuple == TupleId(0)));
    }

    #[test]
    fn clean_data_has_no_violations() {
        let truth = dataset::sample_hospital_truth();
        let rules = sample_hospital_rules();
        assert!(detect_violations(&truth, &rules).is_empty());
    }

    #[test]
    fn single_tuple_cfd_violation_detected() {
        let mut ds = sample_hospital_dataset();
        let pn = ds.schema().attr_id("PN").unwrap();
        ds.set_value(TupleId(4), pn, "0000000000");
        let rules = sample_hospital_rules();
        let violations = detect_violations(&ds, &rules);
        assert!(violations
            .iter()
            .any(|v| v.rule == RuleId(2) && v.kind == ViolationKind::Single));
    }

    #[test]
    fn dc_with_non_equality_reason_falls_back_to_full_scan() {
        use crate::dc::{DcPredicate, DenialConstraint};
        use crate::ops::Op;
        // ¬(PN(t) > PN(t') ∧ ST(t) ≠ ST(t')) — reason predicate is not an
        // equality, so detection must not bucket by PN.
        let dc = DenialConstraint::new(vec![
            DcPredicate::same_attr("PN", Op::Gt),
            DcPredicate::same_attr("ST", Op::Neq),
        ]);
        let rules = RuleSet::new(vec![Rule::Dc(dc)]);
        let ds = sample_hospital_dataset();
        let violations = detect_violations(&ds, &rules);
        // t1.PN(334...) > t4.PN(256...) and AL != AK, so at least that pair
        // must be caught even though the phone numbers differ.
        assert!(violations
            .iter()
            .any(|v| v.tuples.contains(&TupleId(0)) && v.tuples.contains(&TupleId(3))));
    }
}
