//! Re-export of the [`mlnw`] wire codec.
//!
//! The codec began life inside this crate; the out-of-core session work
//! moved it into the standalone [`mlnw`] crate so the spill and snapshot
//! paths in `crates/core` and `crates/distributed` encode through the same
//! format without depending on the transport layer.  This module keeps the
//! historical `transport::codec::*` paths working unchanged.

pub use mlnw::*;
