//! Wire-boundary MLNClean service (the "what if the partitions were remote"
//! story for the paper's Section 6 deployment).
//!
//! PR 5 ran distributed streaming as one process calling per-partition
//! [`mlnclean::CleaningSession`]s through function calls.  This crate
//! promotes that partition boundary to a **message boundary** and makes the
//! result testable without a network:
//!
//! * [`codec`] — the [`mlnw`] codec (re-exported): a compact self-describing
//!   binary format implementing the serde `Serializer`/`Deserializer`
//!   surface, with an `MLNW` magic + version header on every frame;
//! * [`message`] — the wire vocabulary: envelopes carrying the
//!   request/response pairs of the
//!   [`distributed::PartitionBackend`] surface ([`mlnclean::ChangeSet`]
//!   batches, [`mlnclean::SessionWeights`] merge rounds, outcomes);
//! * [`sim`] — a deterministic simulated transport: in-process delivery
//!   with a seeded fault schedule injecting delay, reordering, duplication,
//!   loss and link partitions, so CI exercises real failure interleavings
//!   reproducibly;
//! * [`log`] — the per-partition durable change log (write-ahead journal of
//!   applied batches) that makes a worker restartable;
//! * [`worker`] — a partition worker: one `CleaningSession` behind an
//!   idempotent request handler, with crash/recover by replaying its log;
//! * [`service`] — the wire-backed partition pool ([`service::WireBackend`])
//!   that plugs into the *routing-only* streaming coordinator, plus the
//!   [`service::CleaningService`] front door multiplexing concurrent client
//!   change streams.
//!
//! The headline property, pinned by `tests/wire_equivalence.rs`: a clean run
//! through the wire service — under any seeded fault schedule, including
//! worker crashes with log replay — produces **byte-identical** output (CSV
//! and AGP/RSC/FSCR provenance) to a single in-process
//! [`mlnclean::CleaningSession`] over the same change stream.  Exactly-once
//! effects come from retransmit-until-response RPC over at-most-once
//! datagrams plus idempotent handlers keyed by batch sequence number, not
//! from any reliability assumption about the transport.

pub mod codec;
pub mod log;
pub mod message;
pub mod service;
pub mod sim;
pub mod worker;

pub use codec::{from_bytes, to_bytes, CodecError, CODEC_VERSION, MAGIC};
pub use log::{ChangeLog, LogEntry, MemLog};
pub use message::{Envelope, NodeId, Payload, Request, Response, COORDINATOR};
pub use service::{wire_session, CleaningService, ClientId, Ticket, WireBackend, WireSession};
pub use sim::{FaultSchedule, LinkOutage, NetCounters, SimNet, WorkerCrash};
pub use worker::{PartitionWorker, WorkerCheckpoint};
