//! The per-partition durable change log.
//!
//! A worker's only state-changing input is the ordered sequence of applied
//! change-set batches, so durably recording exactly that sequence makes the
//! worker restartable: a fresh [`mlnclean::CleaningSession`] replaying the
//! log in order reconstructs byte-identical session state (the pipeline is
//! deterministic — same batches in, same cells and provenance out).
//!
//! Entries are stored as **encoded frames** ([`crate::codec`] bytes of the
//! [`mlnclean::ChangeSet`]), not live objects: what survives a crash is
//! whatever was written through the codec, so replay exercises the same
//! decode path a remote disk or replicated log would.

/// One durable record: a batch sequence number and the encoded change set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// The worker-local apply ordinal (dense from 0).
    pub batch_seq: u64,
    /// Codec frame of the applied [`mlnclean::ChangeSet`].
    pub payload: Vec<u8>,
}

/// Append-only change log a worker journals applied batches into.
///
/// `append` must be atomic with respect to the crash model: the simulated
/// crash points sit *between* message deliveries, never inside a handler,
/// so an entry is either fully present or was never written.
pub trait ChangeLog {
    /// Journal one applied batch.
    fn append(&mut self, batch_seq: u64, payload: &[u8]);
    /// All entries, in append order.
    fn entries(&self) -> &[LogEntry];
    /// Number of journaled batches.
    fn len(&self) -> usize {
        self.entries().len()
    }
    /// Whether nothing was journaled yet.
    fn is_empty(&self) -> bool {
        self.entries().is_empty()
    }
}

/// In-memory change log.  "Durable" relative to the simulated crash model:
/// a crash tears down the worker's session, not its log (the log stands in
/// for the disk / replicated store a real deployment would write).
#[derive(Debug, Clone, Default)]
pub struct MemLog {
    entries: Vec<LogEntry>,
}

impl MemLog {
    /// An empty log.
    pub fn new() -> Self {
        MemLog::default()
    }

    /// Drop every entry with `batch_seq <= seq`.
    ///
    /// Called when a checkpoint durably captures session state through batch
    /// `seq`: recovery then resumes from the checkpoint and replays only the
    /// tail, so the covered prefix is dead weight — without this the journal
    /// of a long-lived stream grows without bound.
    pub fn truncate_through(&mut self, seq: u64) {
        self.entries.retain(|e| e.batch_seq > seq);
    }
}

impl ChangeLog for MemLog {
    fn append(&mut self, batch_seq: u64, payload: &[u8]) {
        // Dense in-order journaling, modulo a truncated prefix: after a
        // checkpoint the log may start anywhere, but appends must still
        // extend the tail contiguously.
        debug_assert_eq!(
            batch_seq,
            self.entries.last().map_or(batch_seq, |e| e.batch_seq + 1),
            "batches must be journaled densely in order"
        );
        self.entries.push(LogEntry {
            batch_seq,
            payload: payload.to_vec(),
        });
    }

    fn entries(&self) -> &[LogEntry] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec;
    use mlnclean::{ChangeSet, Mutation};

    #[test]
    fn log_round_trips_change_sets() {
        let mut log = MemLog::new();
        let batches: Vec<ChangeSet> = (0..3)
            .map(|i| {
                [Mutation::Insert(vec![vec![format!("v{i}")]])]
                    .into_iter()
                    .collect()
            })
            .collect();
        for (i, batch) in batches.iter().enumerate() {
            log.append(i as u64, &codec::to_bytes(batch).unwrap());
        }
        assert_eq!(log.len(), 3);
        for (i, entry) in log.entries().iter().enumerate() {
            assert_eq!(entry.batch_seq, i as u64);
            let back: ChangeSet = codec::from_bytes(&entry.payload).unwrap();
            assert_eq!(back, batches[i]);
        }
    }

    #[test]
    fn truncate_through_keeps_only_the_tail() {
        let mut log = MemLog::new();
        for seq in 0..5u64 {
            log.append(seq, &[seq as u8]);
        }
        log.truncate_through(2);
        assert_eq!(log.len(), 2);
        assert_eq!(
            log.entries()
                .iter()
                .map(|e| e.batch_seq)
                .collect::<Vec<_>>(),
            vec![3, 4]
        );
        // Appends keep extending the (now offset) tail densely.
        log.append(5, &[5]);
        assert_eq!(log.entries().last().unwrap().batch_seq, 5);
        // Truncating everything empties the log; the next append may then
        // start at any sequence number (a fresh post-checkpoint tail).
        log.truncate_through(5);
        assert!(log.is_empty());
        log.append(6, &[6]);
        assert_eq!(log.len(), 1);
    }
}
