//! The wire vocabulary: everything that crosses the simulated network.
//!
//! One [`Envelope`] per datagram, carrying either a coordinator
//! [`Request`] or a worker [`Response`].  The request set mirrors the
//! [`distributed::PartitionBackend`] surface one-for-one — the coordinator
//! brain stays routing-only; workers own all row/cell state.
//!
//! Reliability model: envelopes are sent over an **at-most-once** datagram
//! transport (they can be delayed, reordered, duplicated or dropped — see
//! [`crate::sim`]).  Exactly-once *effects* are layered on top:
//!
//! * the coordinator retransmits a request until a response with its
//!   `req_id` arrives, and ignores responses for retired `req_id`s;
//! * the only state-changing request, [`Request::ApplyBatch`], carries a
//!   per-worker **batch sequence number**: a worker applies sequence `n`
//!   exactly once, re-acknowledging duplicates from its report cache
//!   (rebuilt on restart by log replay, see [`crate::worker`]);
//! * every other request is a pure read of current worker state, safe to
//!   re-execute.

use mlnclean::{BatchReport, Block, ChangeSet, Report, SessionWeights};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Node address on the simulated network: [`COORDINATOR`] or a worker
/// (worker `w` lives at address `w + 1`).
pub type NodeId = usize;

/// The coordinator's network address.
pub const COORDINATOR: NodeId = 0;

/// One datagram: addressed, correlated, and carrying a request or response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Envelope {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Correlates a response with the request that caused it; the
    /// coordinator never reuses an id, so late duplicates are ignorable.
    pub req_id: u64,
    /// The message itself.
    pub body: Payload,
}

/// What an [`Envelope`] carries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Payload {
    /// Coordinator → worker.
    Request(Request),
    /// Worker → coordinator.
    Response(Response),
}

/// Coordinator → worker RPCs, mirroring [`distributed::PartitionBackend`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Apply one routed change-set slice (the only state-changing request).
    /// `batch_seq` numbers this worker's applies from zero; the handler is
    /// idempotent per sequence number.
    ApplyBatch {
        /// This worker's apply ordinal (dense from 0).
        batch_seq: u64,
        /// The slice, already in partition-local coordinates.
        changes: ChangeSet,
    },
    /// Values the worker interned since pool index `from` (read-only).
    PoolTail {
        /// First pool index the coordinator has not yet seen.
        from: usize,
    },
    /// Pristine (pre-Stage-I) copies of the listed blocks (read-only).
    PristineBlocks {
        /// Block indices, in the order the coordinator wants them back.
        blocks: Vec<usize>,
    },
    /// The worker's current rows as local value ids (read-only).
    GatherRows,
    /// The worker's cumulative index-maintenance wall clock (read-only).
    IndexClock,
    /// Inject the merged weight table and return the worker's local outcome.
    /// Recomputing an outcome from the same weights is idempotent, so this
    /// counts as re-executable despite touching session caches.
    Outcome {
        /// The coordinator's merged (Eq. 6) weight table.
        weights: SessionWeights,
    },
    /// Take a durable checkpoint of the worker's session (a compacting
    /// [`mlnclean::SessionSnapshot`] encoded through the codec) and truncate
    /// the journaled prefix it covers.  Idempotent: the session state at a
    /// fixed batch cursor is deterministic, so re-checkpointing at the same
    /// cursor re-derives (or re-acknowledges) the same checkpoint — a
    /// retransmit duplicate is harmless.
    ///
    /// Appended after the original request set: the codec identifies enum
    /// variants positionally, so new vocabulary must extend the tail to keep
    /// old frames decodable.
    Checkpoint,
}

/// Worker → coordinator replies, one per [`Request`] shape.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// Acknowledges [`Request::ApplyBatch`] `batch_seq` with its report
    /// (possibly replayed from the worker's cache for a duplicate).
    Applied {
        /// Echo of the applied sequence number.
        batch_seq: u64,
        /// The session's report for that batch.
        report: BatchReport,
    },
    /// Reply to [`Request::PoolTail`].
    PoolTail {
        /// The tail values, in pool-id order.
        values: Vec<String>,
    },
    /// Reply to [`Request::PristineBlocks`].
    PristineBlocks {
        /// The requested blocks, in request order.
        blocks: Vec<Block>,
    },
    /// Reply to [`Request::GatherRows`].
    GatherRows {
        /// Current rows in local order, as local value ids.
        rows: Vec<Vec<dataset::ValueId>>,
    },
    /// Reply to [`Request::IndexClock`].
    IndexClock {
        /// Cumulative index-maintenance time.
        clock: Duration,
    },
    /// Reply to [`Request::Outcome`].
    Outcome {
        /// The worker's local cleaning outcome (boxed: a report dwarfs
        /// every other variant).
        report: Box<Report>,
    },
    /// Acknowledges [`Request::Checkpoint`] (appended at the tail for the
    /// same positional-codec reason as its request).
    Checkpointed {
        /// Batches the checkpoint covers (== the worker's apply cursor at
        /// checkpoint time); recovery replays only journal entries past it.
        batches: u64,
        /// Size of the encoded snapshot frame, for capacity accounting.
        snapshot_bytes: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{from_bytes, to_bytes};
    use mlnclean::Mutation;

    #[test]
    fn envelopes_round_trip_through_the_codec() {
        let env = Envelope {
            src: COORDINATOR,
            dst: 2,
            req_id: 41,
            body: Payload::Request(Request::ApplyBatch {
                batch_seq: 3,
                changes: [
                    Mutation::Insert(vec![vec!["a".into(), "b".into()]]),
                    Mutation::Update(dataset::TupleId(0), dataset::AttrId(1), "c".into()),
                    Mutation::Delete(dataset::TupleId(9)),
                ]
                .into_iter()
                .collect(),
            }),
        };
        // Envelope has no PartialEq (a Report carries a Dataset, which has
        // none) — compare through the deterministic encoding instead.
        let bytes = to_bytes(&env).unwrap();
        let back = from_bytes::<Envelope>(&bytes).unwrap();
        assert_eq!(to_bytes(&back).unwrap(), bytes);
        match back.body {
            Payload::Request(req) => {
                assert!(matches!(req, Request::ApplyBatch { batch_seq: 3, .. }))
            }
            Payload::Response(_) => panic!("decoded a response from a request frame"),
        }

        let reads = vec![
            Request::PoolTail { from: 17 },
            Request::PristineBlocks { blocks: vec![0, 2] },
            Request::GatherRows,
            Request::IndexClock,
            Request::Outcome {
                weights: SessionWeights::new(),
            },
            Request::Checkpoint,
        ];
        for req in reads {
            let bytes = to_bytes(&req).unwrap();
            assert_eq!(from_bytes::<Request>(&bytes).unwrap(), req);
        }

        // The tail-appended response decodes to the same fields (Response
        // has no PartialEq — a Report carries a Dataset — so match it).
        let ack = Response::Checkpointed {
            batches: 7,
            snapshot_bytes: 4096,
        };
        let back = from_bytes::<Response>(&to_bytes(&ack).unwrap()).unwrap();
        assert!(matches!(
            back,
            Response::Checkpointed {
                batches: 7,
                snapshot_bytes: 4096
            }
        ));
    }
}
