//! The wire-backed cleaning service.
//!
//! Two layers:
//!
//! * [`WireBackend`] — a [`distributed::PartitionBackend`] whose partitions
//!   are [`PartitionWorker`]s on the far side of a [`SimNet`].  Every
//!   backend call becomes one or more request/response RPCs: the
//!   coordinator sends a request, pumps the network (delivering datagrams,
//!   running worker handlers, firing scheduled crashes) and retransmits
//!   until the matching response arrives.  Plugged into
//!   [`DistributedStreamingSession`], this reuses the exact routing-only
//!   coordinator brain of the in-process backend — which is why the wire
//!   service is byte-identical to it under *any* fault schedule.
//! * [`CleaningService`] — the front door: an async-style submission queue
//!   multiplexing any number of client change streams into the single
//!   session, fair round-robin.  `submit` never blocks on cleaning work;
//!   [`CleaningService::step`] performs one queued batch and returns its
//!   ticketed report.
//!
//! ## Why retransmit-until-response (and not a reliable channel)
//!
//! A sliding-window reliable channel would need connection state on both
//! ends — state a crashed worker loses, turning recovery into a handshake
//! problem.  Stateless request retry over idempotent handlers needs nothing
//! from the worker but its (durably logged) batch cursor: after a crash and
//! replay, a retransmitted request is just another duplicate to dedup.  The
//! coordinator never pipelines applies — batch `n+1` is not issued until
//! every worker acknowledged batch `n` — so a worker can never see a
//! sequence number it is not ready for.

use crate::log::ChangeLog;
use crate::message::{Envelope, Payload, Request, Response, COORDINATOR};
use crate::sim::{FaultSchedule, NetCounters, SimNet, WorkerCrash};
use crate::worker::PartitionWorker;
use dataset::{Schema, ValueId};
use distributed::{DistributedStreamingSession, PartitionBackend};
use mlnclean::{
    BatchReport, Block, ChangeSet, CleanConfig, CleanError, Mutation, Report, SessionWeights,
};
use rules::RuleSet;
use std::collections::{HashMap, VecDeque};
use std::time::Duration;

/// Ticks the coordinator waits with an empty network before retransmitting
/// every outstanding request.  Longer than any single outage in a typical
/// schedule is unnecessary — retries repeat until answered.
const RETRY_EVERY: u64 = 16;

/// The streaming coordinator driving wire-attached partitions.
pub type WireSession = DistributedStreamingSession<WireBackend>;

/// Open a [`WireSession`]: `partitions` workers behind a simulated network
/// running `schedule`, and the routing-only coordinator in front.
pub fn wire_session(
    config: CleanConfig,
    schema: Schema,
    rules: RuleSet,
    partitions: usize,
    merge_every: usize,
    schedule: FaultSchedule,
) -> Result<WireSession, CleanError> {
    let backend = WireBackend::new(
        config.clone(),
        schema.clone(),
        rules.clone(),
        partitions,
        schedule,
    )?;
    DistributedStreamingSession::with_backend(config, schema, rules, backend, merge_every)
}

/// A partition pool on the far side of a simulated network (see the
/// [module docs](self)).
#[derive(Debug)]
pub struct WireBackend {
    net: SimNet,
    workers: Vec<PartitionWorker>,
    /// Next request correlation id (never reused).
    next_req_id: u64,
    /// Per-worker next apply sequence number.
    batch_seqs: Vec<u64>,
    /// Crash events not yet fired, sorted by tick.
    crashes: Vec<WorkerCrash>,
    crash_cursor: usize,
}

impl WireBackend {
    /// Open `partitions` workers for `schema` under `rules`, wired through
    /// a network running `schedule`.
    pub fn new(
        config: CleanConfig,
        schema: Schema,
        rules: RuleSet,
        partitions: usize,
        schedule: FaultSchedule,
    ) -> Result<Self, CleanError> {
        if partitions == 0 {
            return Err(CleanError::Partition { workers: 0 });
        }
        let mut workers = Vec::with_capacity(partitions);
        for _ in 0..partitions {
            workers.push(PartitionWorker::new(
                config.clone(),
                schema.clone(),
                rules.clone(),
            )?);
        }
        let mut crashes: Vec<WorkerCrash> = schedule
            .crashes
            .iter()
            .filter(|c| c.worker < partitions)
            .cloned()
            .collect();
        crashes.sort_by_key(|c| (c.at, c.worker));
        Ok(WireBackend {
            net: SimNet::new(schedule),
            workers,
            next_req_id: 0,
            batch_seqs: vec![0; partitions],
            crashes,
            crash_cursor: 0,
        })
    }

    /// Transport tallies (sent/delivered/dropped/duplicated/retransmits).
    pub fn counters(&self) -> NetCounters {
        self.net.counters()
    }

    /// Total crash/recover cycles across all workers.
    pub fn total_restarts(&self) -> usize {
        self.workers.iter().map(|w| w.restarts()).sum()
    }

    /// Crash a worker *now* and recover it from its change log — the chaos
    /// hook for tests that want a crash at an exact protocol point rather
    /// than a scheduled tick.
    pub fn crash_worker(&mut self, worker: usize) {
        self.workers[worker].crash_and_recover();
    }

    /// Broadcast [`Request::Checkpoint`] to every worker and wait for the
    /// acknowledgements: each worker durably snapshots its session and
    /// truncates the covered journal prefix, so later crashes recover by
    /// resume-plus-tail-replay instead of full replay.  Returns, per
    /// worker, the batch cursor the checkpoint covers and the encoded
    /// snapshot size.  Safe to call at any quiescent point between applies
    /// (the RPC layer retransmits through faults like any other request).
    pub fn checkpoint_workers(&mut self) -> Vec<(u64, u64)> {
        let calls = (0..self.workers.len())
            .map(|worker| (worker, Request::Checkpoint))
            .collect();
        self.call_many(calls)
            .into_iter()
            .map(|response| {
                let Response::Checkpointed {
                    batches,
                    snapshot_bytes,
                } = response
                else {
                    unreachable!("Checkpoint answered with a mismatched response");
                };
                (batches, snapshot_bytes)
            })
            .collect()
    }

    /// Journal entries currently held across all workers (shrinks when
    /// checkpoints truncate covered prefixes).
    pub fn journaled_batches(&self) -> usize {
        self.workers.iter().map(|w| w.log().len()).sum()
    }

    /// Fire every scheduled crash whose tick the clock has reached.  Crash
    /// points sit between message deliveries — never inside a handler — so
    /// worker state transitions are atomic with respect to the journal.
    fn fire_due_crashes(&mut self) {
        while let Some(crash) = self.crashes.get(self.crash_cursor) {
            if crash.at > self.net.clock() {
                break;
            }
            self.workers[crash.worker].crash_and_recover();
            self.crash_cursor += 1;
        }
    }

    /// Issue one request per `(worker, request)` pair and pump the network
    /// until every response arrived, retransmitting as needed.  Responses
    /// come back in call order.
    fn call_many(&mut self, calls: Vec<(usize, Request)>) -> Vec<Response> {
        let mut order = Vec::with_capacity(calls.len());
        let mut pending: HashMap<u64, (usize, Request)> = HashMap::new();
        for (worker, request) in calls {
            let req_id = self.next_req_id;
            self.next_req_id += 1;
            self.net.send(&Envelope {
                src: COORDINATOR,
                dst: worker + 1,
                req_id,
                body: Payload::Request(request.clone()),
            });
            order.push(req_id);
            pending.insert(req_id, (worker, request));
        }

        let mut responses: HashMap<u64, Response> = HashMap::new();
        while responses.len() < order.len() {
            self.fire_due_crashes();
            match self.net.advance() {
                Some(envelope) => {
                    // The delivery advanced the clock; crashes scheduled
                    // before this arrival fire before the message is seen.
                    self.fire_due_crashes();
                    self.deliver(envelope, &pending, &mut responses);
                }
                None => {
                    // Every copy of some outstanding request (or its
                    // response) was lost.  Let time pass — outages heal on
                    // the clock — and retransmit everything still owed.
                    self.net.tick(RETRY_EVERY);
                    for (&req_id, (worker, request)) in &pending {
                        if !responses.contains_key(&req_id) {
                            self.net.note_retransmit();
                            self.net.send(&Envelope {
                                src: COORDINATOR,
                                dst: worker + 1,
                                req_id,
                                body: Payload::Request(request.clone()),
                            });
                        }
                    }
                }
            }
        }
        order
            .into_iter()
            .map(|id| {
                responses
                    .remove(&id)
                    .expect("loop exits only when all arrived")
            })
            .collect()
    }

    fn deliver(
        &mut self,
        envelope: Envelope,
        pending: &HashMap<u64, (usize, Request)>,
        responses: &mut HashMap<u64, Response>,
    ) {
        match envelope.body {
            Payload::Request(request) if envelope.dst != COORDINATOR => {
                let worker = envelope.dst - 1;
                let response = self.workers[worker].handle(request);
                self.net.send(&Envelope {
                    src: envelope.dst,
                    dst: COORDINATOR,
                    req_id: envelope.req_id,
                    body: Payload::Response(response),
                });
            }
            Payload::Response(response) if envelope.dst == COORDINATOR => {
                // First response wins; duplicates and responses to retired
                // request ids are dropped on the floor.
                if pending.contains_key(&envelope.req_id) {
                    responses.entry(envelope.req_id).or_insert(response);
                }
            }
            _ => {
                // A request addressed to the coordinator or a response
                // addressed to a worker is a protocol bug, not a fault the
                // schedule can inject.
                unreachable!("misaddressed envelope on the simulated network");
            }
        }
    }

    fn call_one(&mut self, worker: usize, request: Request) -> Response {
        self.call_many(vec![(worker, request)])
            .pop()
            .expect("one call, one response")
    }
}

impl PartitionBackend for WireBackend {
    fn partitions(&self) -> usize {
        self.workers.len()
    }

    fn apply_slices(&mut self, slices: Vec<Vec<Mutation>>) -> Vec<Option<BatchReport>> {
        let mut calls = Vec::new();
        let mut active = Vec::new();
        for (worker, mutations) in slices.into_iter().enumerate() {
            if mutations.is_empty() {
                continue;
            }
            let changes: ChangeSet = mutations.into_iter().collect();
            calls.push((
                worker,
                Request::ApplyBatch {
                    batch_seq: self.batch_seqs[worker],
                    changes,
                },
            ));
            active.push(worker);
        }
        let mut out = vec![None; self.workers.len()];
        for (worker, response) in active.iter().zip(self.call_many(calls)) {
            let Response::Applied { report, .. } = response else {
                unreachable!("ApplyBatch answered with a non-Applied response");
            };
            self.batch_seqs[*worker] += 1;
            out[*worker] = Some(report);
        }
        out
    }

    fn pool_tail(&mut self, p: usize, from: usize) -> Vec<String> {
        let Response::PoolTail { values } = self.call_one(p, Request::PoolTail { from }) else {
            unreachable!("PoolTail answered with a mismatched response");
        };
        values
    }

    fn pristine_blocks(&mut self, blocks: &[usize]) -> Vec<Vec<Block>> {
        let calls = (0..self.workers.len())
            .map(|worker| {
                (
                    worker,
                    Request::PristineBlocks {
                        blocks: blocks.to_vec(),
                    },
                )
            })
            .collect();
        self.call_many(calls)
            .into_iter()
            .map(|response| {
                let Response::PristineBlocks { blocks } = response else {
                    unreachable!("PristineBlocks answered with a mismatched response");
                };
                blocks
            })
            .collect()
    }

    fn gather_rows(&mut self, p: usize) -> Vec<Vec<ValueId>> {
        let Response::GatherRows { rows } = self.call_one(p, Request::GatherRows) else {
            unreachable!("GatherRows answered with a mismatched response");
        };
        rows
    }

    fn index_clock(&mut self) -> Duration {
        let calls = (0..self.workers.len())
            .map(|worker| (worker, Request::IndexClock))
            .collect();
        self.call_many(calls)
            .into_iter()
            .map(|response| {
                let Response::IndexClock { clock } = response else {
                    unreachable!("IndexClock answered with a mismatched response");
                };
                clock
            })
            .sum()
    }

    fn partition_outcome(&mut self, p: usize, weights: SessionWeights) -> Report {
        let Response::Outcome { report } = self.call_one(p, Request::Outcome { weights }) else {
            unreachable!("Outcome answered with a mismatched response");
        };
        *report
    }
}

// ---------------------------------------------------------------------------
// Front door.
// ---------------------------------------------------------------------------

/// Handle identifying a connected client stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClientId(usize);

/// Receipt for one submitted change set; redeemed by
/// [`CleaningService::step`]'s return value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket(u64);

/// Async-style front door: any number of client change streams multiplexed
/// into one [`WireSession`].
///
/// `submit` only enqueues — the expensive work happens when the caller (or
/// a driver loop) pumps [`CleaningService::step`].  Batches are drawn fair
/// round-robin across clients, and within one client strictly in submission
/// order, so no stream can starve another while each stream keeps its own
/// ordering guarantee.
#[derive(Debug)]
pub struct CleaningService {
    session: WireSession,
    clients: Vec<VecDeque<(Ticket, ChangeSet)>>,
    rr: usize,
    next_ticket: u64,
}

impl CleaningService {
    /// Open a service over `partitions` wire-attached workers.
    pub fn new(
        config: CleanConfig,
        schema: Schema,
        rules: RuleSet,
        partitions: usize,
        merge_every: usize,
        schedule: FaultSchedule,
    ) -> Result<Self, CleanError> {
        Ok(CleaningService {
            session: wire_session(config, schema, rules, partitions, merge_every, schedule)?,
            clients: Vec::new(),
            rr: 0,
            next_ticket: 0,
        })
    }

    /// Register a new client stream.
    pub fn connect(&mut self) -> ClientId {
        self.clients.push(VecDeque::new());
        ClientId(self.clients.len() - 1)
    }

    /// Enqueue a change set on `client`'s stream.  Never blocks on cleaning
    /// work; returns the ticket its report will carry.
    pub fn submit(&mut self, client: ClientId, changes: ChangeSet) -> Ticket {
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        self.clients[client.0].push_back((ticket, changes));
        ticket
    }

    /// Change sets submitted but not yet applied.
    pub fn backlog(&self) -> usize {
        self.clients.iter().map(VecDeque::len).sum()
    }

    /// Apply the next queued change set (fair round-robin across clients).
    /// `None` when every queue is empty.  A batch that fails validation
    /// reports its error against its ticket; the session stays usable.
    pub fn step(&mut self) -> Option<(Ticket, Result<BatchReport, CleanError>)> {
        let clients = self.clients.len();
        for offset in 0..clients.max(1) {
            let c = (self.rr + offset) % clients.max(1);
            if let Some((ticket, changes)) = self.clients.get_mut(c).and_then(VecDeque::pop_front) {
                self.rr = (c + 1) % clients;
                return Some((ticket, self.session.apply(changes)));
            }
        }
        None
    }

    /// Pump [`CleaningService::step`] until every queue is empty.
    pub fn drain(&mut self) -> Vec<(Ticket, Result<BatchReport, CleanError>)> {
        let mut out = Vec::with_capacity(self.backlog());
        while let Some(done) = self.step() {
            out.push(done);
        }
        out
    }

    /// The session behind the front door (timings, footprint, backend).
    pub fn session_mut(&mut self) -> &mut WireSession {
        &mut self.session
    }

    /// Snapshot the merged outcome (drains the backlog first — an outcome
    /// must reflect every accepted submission).
    pub fn outcome(&mut self) -> Report {
        self.drain();
        self.session.outcome()
    }

    /// Close the service: drain, merge, and hand back the final report.
    pub fn finish(mut self) -> Report {
        self.drain();
        self.session.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlnclean::Mutation;
    use rules::parse_rules;

    fn schema() -> Schema {
        Schema::new(&["City", "Zip"])
    }

    fn insert(rows: &[(&str, &str)]) -> ChangeSet {
        [Mutation::Insert(
            rows.iter()
                .map(|(c, z)| vec![c.to_string(), z.to_string()])
                .collect(),
        )]
        .into_iter()
        .collect()
    }

    #[test]
    fn front_door_is_fair_and_ordered() {
        let mut service = CleaningService::new(
            CleanConfig::default(),
            schema(),
            parse_rules("FD: City -> Zip").unwrap(),
            2,
            2,
            FaultSchedule::reliable(),
        )
        .unwrap();
        let a = service.connect();
        let b = service.connect();
        let t0 = service.submit(a, insert(&[("BOAZ", "35016")]));
        let t1 = service.submit(a, insert(&[("BOAZ", "35014")]));
        let t2 = service.submit(b, insert(&[("ELBA", "36323")]));
        assert_eq!(service.backlog(), 3);

        let done = service.drain();
        assert_eq!(service.backlog(), 0);
        // Round-robin: a, b, a — and a's tickets stay in submission order.
        let order: Vec<Ticket> = done.iter().map(|(t, _)| *t).collect();
        assert_eq!(order, vec![t0, t2, t1]);
        for (_, report) in &done {
            assert!(report.is_ok());
        }
        let outcome = service.finish();
        assert_eq!(outcome.repaired.len(), 3);
    }

    #[test]
    fn empty_service_steps_to_none() {
        let mut service = CleaningService::new(
            CleanConfig::default(),
            schema(),
            parse_rules("FD: City -> Zip").unwrap(),
            1,
            1,
            FaultSchedule::reliable(),
        )
        .unwrap();
        assert!(service.step().is_none());
        let _ = service.connect();
        assert!(service.step().is_none());
    }
}
