//! Deterministic simulated transport.
//!
//! [`SimNet`] is an in-process datagram network with a discrete tick clock.
//! Sends serialize the envelope through the [`crate::codec`] (every message
//! really crosses the byte boundary), consult the seeded [`FaultSchedule`],
//! and enqueue zero or more deliveries at future ticks; [`SimNet::advance`]
//! pops the earliest delivery, moves the clock to it, and decodes the bytes
//! back into an [`Envelope`].
//!
//! Determinism is the point: the same seed and the same send sequence yield
//! the same delivery interleaving, so a CI failure under a hostile schedule
//! is replayable from its seed alone.  Faults injected per transmission:
//!
//! * **delay** — every datagram takes `delay.0..=delay.1` ticks (delay
//!   variance is also what causes reordering);
//! * **reorder** — with probability `reorder`, an extra jitter of up to
//!   `4 × delay.1` ticks lands the datagram far out of order;
//! * **duplicate** — with probability `duplicate`, a second copy is
//!   enqueued with its own delay;
//! * **loss** — with probability `loss`, the datagram is dropped;
//! * **link outages** — while `clock ∈ [from, until)` for an
//!   [`LinkOutage`] covering the (src, dst) pair, every datagram on that
//!   link is dropped (outages must end: the RPC layer retries past them).
//!
//! The schedule also carries [`WorkerCrash`] events — the service kills and
//! replays the named worker when the clock passes `at` (see
//! [`crate::service`]); the network itself only transports bytes.

use crate::codec;
use crate::message::{Envelope, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A window during which a link drops everything, in both directions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkOutage {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// First tick of the outage (inclusive).
    pub from: u64,
    /// First tick after the outage (exclusive) — outages heal.
    pub until: u64,
}

/// Kill worker `worker` once the clock reaches `at`; the service restarts
/// it immediately from its durable change log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerCrash {
    /// Tick at (or after) which the crash fires.
    pub at: u64,
    /// Worker index (0-based, not its node address).
    pub worker: usize,
}

/// Seeded description of everything hostile the network will do.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    /// RNG seed; two runs with equal schedules are identical.
    pub seed: u64,
    /// Per-datagram base delay range in ticks (min, max), inclusive.
    pub delay: (u64, u64),
    /// Probability of an extra long jitter forcing reordering.
    pub reorder: f64,
    /// Probability of duplicating a datagram.
    pub duplicate: f64,
    /// Probability of dropping a datagram.
    pub loss: f64,
    /// Scheduled link outages.
    pub outages: Vec<LinkOutage>,
    /// Scheduled worker crashes (consumed by the service layer).
    pub crashes: Vec<WorkerCrash>,
}

impl FaultSchedule {
    /// A fault-free schedule: instant, in-order, reliable delivery.
    pub fn reliable() -> Self {
        FaultSchedule {
            seed: 0,
            delay: (0, 0),
            reorder: 0.0,
            duplicate: 0.0,
            loss: 0.0,
            outages: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// Whether the (src, dst) link is inside an outage window at `tick`.
    fn link_down(&self, src: NodeId, dst: NodeId, tick: u64) -> bool {
        self.outages.iter().any(|o| {
            let covers = (o.a == src && o.b == dst) || (o.a == dst && o.b == src);
            covers && tick >= o.from && tick < o.until
        })
    }
}

/// Transport-level tallies, for probes and bench reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Datagrams handed to [`SimNet::send`] (retransmissions included).
    pub sent: u64,
    /// Datagrams actually delivered (duplicates included).
    pub delivered: u64,
    /// Datagrams dropped by loss or a link outage.
    pub dropped: u64,
    /// Extra copies enqueued by duplication.
    pub duplicated: u64,
    /// Retransmissions (counted by the RPC layer via
    /// [`SimNet::note_retransmit`]).
    pub retransmits: u64,
    /// Total encoded bytes offered to the network.
    pub bytes_sent: u64,
}

/// One scheduled delivery.  Ordered by (tick, sequence) so the heap pops a
/// unique, deterministic earliest element.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Flight {
    deliver_at: u64,
    seq: u64,
    bytes: Vec<u8>,
}

/// The simulated datagram network (see the [module docs](self)).
#[derive(Debug)]
pub struct SimNet {
    clock: u64,
    schedule: FaultSchedule,
    rng: StdRng,
    inflight: BinaryHeap<Reverse<Flight>>,
    next_seq: u64,
    counters: NetCounters,
}

impl SimNet {
    /// A network driven by the given fault schedule.
    pub fn new(schedule: FaultSchedule) -> Self {
        let rng = StdRng::seed_from_u64(schedule.seed);
        SimNet {
            clock: 0,
            schedule,
            rng,
            inflight: BinaryHeap::new(),
            next_seq: 0,
            counters: NetCounters::default(),
        }
    }

    /// Current tick.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Transport tallies so far.
    pub fn counters(&self) -> NetCounters {
        self.counters
    }

    /// The schedule this network runs under.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// Advance the clock without a delivery (the RPC layer's retry timer:
    /// with nothing in flight, time must still pass for outages to heal).
    pub fn tick(&mut self, by: u64) {
        self.clock += by;
    }

    /// Record a retransmission decided by the RPC layer.
    pub fn note_retransmit(&mut self) {
        self.counters.retransmits += 1;
    }

    /// Offer a datagram to the network.  It is encoded immediately; the
    /// fault schedule decides how many copies (0, 1 or 2) get scheduled and
    /// when they land.
    pub fn send(&mut self, envelope: &Envelope) {
        let bytes = codec::to_bytes(envelope).expect("wire types always encode");
        self.counters.sent += 1;
        self.counters.bytes_sent += bytes.len() as u64;

        if self
            .schedule
            .link_down(envelope.src, envelope.dst, self.clock)
            || (self.schedule.loss > 0.0 && self.rng.gen_bool(self.schedule.loss))
        {
            self.counters.dropped += 1;
            return;
        }

        let copies = if self.schedule.duplicate > 0.0 && self.rng.gen_bool(self.schedule.duplicate)
        {
            self.counters.duplicated += 1;
            2
        } else {
            1
        };
        for _ in 0..copies {
            let delay = self.draw_delay();
            let flight = Flight {
                deliver_at: self.clock + delay,
                seq: self.next_seq,
                bytes: bytes.clone(),
            };
            self.next_seq += 1;
            self.inflight.push(Reverse(flight));
        }
    }

    fn draw_delay(&mut self) -> u64 {
        let (lo, hi) = self.schedule.delay;
        let mut delay = if hi > lo {
            self.rng.gen_range(lo..=hi)
        } else {
            lo
        };
        if self.schedule.reorder > 0.0 && self.rng.gen_bool(self.schedule.reorder) {
            let span = self.schedule.delay.1.max(1) * 4;
            delay += self.rng.gen_range(1..=span);
        }
        delay
    }

    /// Deliver the earliest in-flight datagram, advancing the clock to its
    /// arrival tick.  `None` when nothing is in flight.
    pub fn advance(&mut self) -> Option<Envelope> {
        let Reverse(flight) = self.inflight.pop()?;
        self.clock = self.clock.max(flight.deliver_at);
        self.counters.delivered += 1;
        Some(codec::from_bytes(&flight.bytes).expect("the network only carries encoded envelopes"))
    }

    /// Whether any datagram is still in flight.
    pub fn idle(&self) -> bool {
        self.inflight.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Payload, Request, COORDINATOR};

    fn probe(dst: NodeId, req_id: u64) -> Envelope {
        Envelope {
            src: COORDINATOR,
            dst,
            req_id,
            body: Payload::Request(Request::GatherRows),
        }
    }

    fn drain(net: &mut SimNet) -> Vec<u64> {
        let mut ids = Vec::new();
        while let Some(env) = net.advance() {
            ids.push(env.req_id);
        }
        ids
    }

    #[test]
    fn reliable_schedule_delivers_in_order() {
        let mut net = SimNet::new(FaultSchedule::reliable());
        for i in 0..10 {
            net.send(&probe(1, i));
        }
        assert_eq!(drain(&mut net), (0..10).collect::<Vec<_>>());
        let counters = net.counters();
        assert_eq!(counters.sent, 10);
        assert_eq!(counters.delivered, 10);
        assert_eq!(counters.dropped, 0);
    }

    #[test]
    fn same_seed_same_interleaving() {
        let schedule = FaultSchedule {
            seed: 7,
            delay: (0, 9),
            reorder: 0.3,
            duplicate: 0.2,
            loss: 0.2,
            ..FaultSchedule::reliable()
        };
        let runs: Vec<Vec<u64>> = (0..2)
            .map(|_| {
                let mut net = SimNet::new(schedule.clone());
                for i in 0..50 {
                    net.send(&probe(1 + (i as usize % 3), i));
                }
                drain(&mut net)
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn faults_actually_fire() {
        let mut net = SimNet::new(FaultSchedule {
            seed: 11,
            delay: (0, 5),
            reorder: 0.5,
            duplicate: 0.5,
            loss: 0.3,
            ..FaultSchedule::reliable()
        });
        for i in 0..200 {
            net.send(&probe(1, i));
        }
        let delivered = drain(&mut net);
        let counters = net.counters();
        assert!(counters.dropped > 0, "loss never fired");
        assert!(counters.duplicated > 0, "duplication never fired");
        assert_eq!(
            counters.delivered as usize,
            delivered.len(),
            "counter drifted from reality"
        );
        assert_eq!(
            counters.sent - counters.dropped + counters.duplicated,
            counters.delivered,
            "every non-dropped copy must land"
        );
        assert!(
            delivered.windows(2).any(|w| w[0] > w[1]),
            "delay variance should reorder something"
        );
    }

    #[test]
    fn outages_drop_then_heal() {
        let mut net = SimNet::new(FaultSchedule {
            outages: vec![LinkOutage {
                a: COORDINATOR,
                b: 1,
                from: 0,
                until: 100,
            }],
            ..FaultSchedule::reliable()
        });
        net.send(&probe(1, 0));
        assert_eq!(net.counters().dropped, 1);
        assert!(net.advance().is_none());
        net.tick(100);
        net.send(&probe(1, 1));
        assert_eq!(net.advance().unwrap().req_id, 1);
        // A different link is unaffected during the outage.
        let mut net2 = SimNet::new(FaultSchedule {
            outages: vec![LinkOutage {
                a: COORDINATOR,
                b: 1,
                from: 0,
                until: 100,
            }],
            ..FaultSchedule::reliable()
        });
        net2.send(&probe(2, 5));
        assert_eq!(net2.advance().unwrap().req_id, 5);
    }
}
