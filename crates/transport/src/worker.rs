//! A partition worker: one [`CleaningSession`] behind an idempotent request
//! handler, restartable from its durable change log.
//!
//! ## Exactly-once applies over at-least-once delivery
//!
//! The RPC layer retransmits requests until a response arrives, so a worker
//! can see the same [`Request::ApplyBatch`] many times (and, after healing
//! a long outage, arbitrarily stale copies).  The handler is idempotent by
//! batch sequence number:
//!
//! * `batch_seq == next expected` — journal the change set, apply it, cache
//!   and return the report;
//! * `batch_seq <  next expected` — a duplicate of an already-applied
//!   batch: re-acknowledge from the report cache without touching state;
//! * `batch_seq >  next expected` — unreachable under the coordinator's
//!   no-pipelining rule (it never issues batch `n+1` before every worker
//!   acknowledged batch `n`); the worker panics to surface protocol bugs.
//!
//! ## Crash and replay
//!
//! [`PartitionWorker::crash_and_recover`] models a process kill: session and
//! report cache are discarded, then rebuilt by replaying the change log —
//! decode each journaled frame, re-apply in order, re-derive the reports.
//! Because the cleaning pipeline is deterministic, the recovered session is
//! byte-identical to the lost one, which is exactly what the chaos tests
//! pin.

use crate::codec;
use crate::log::{ChangeLog, MemLog};
use crate::message::{Request, Response};
use dataset::{Schema, TupleId};
use mlnclean::{BatchReport, ChangeSet, CleanConfig, CleanError, CleaningSession};
use rules::RuleSet;

/// One partition's state behind the wire (see the [module docs](self)).
#[derive(Debug)]
pub struct PartitionWorker {
    config: CleanConfig,
    schema: Schema,
    rules: RuleSet,
    session: CleaningSession,
    log: MemLog,
    reports: Vec<BatchReport>,
    restarts: usize,
}

impl PartitionWorker {
    /// Open a worker with an empty session and log.  Fails like
    /// [`CleaningSession::new`] does.
    pub fn new(config: CleanConfig, schema: Schema, rules: RuleSet) -> Result<Self, CleanError> {
        let session = CleaningSession::new(config.clone(), schema.clone(), rules.clone())?;
        Ok(PartitionWorker {
            config,
            schema,
            rules,
            session,
            log: MemLog::new(),
            reports: Vec::new(),
            restarts: 0,
        })
    }

    /// Batches applied so far (== next expected sequence number).
    pub fn applied_batches(&self) -> u64 {
        self.reports.len() as u64
    }

    /// How many times this worker was crashed and recovered.
    pub fn restarts(&self) -> usize {
        self.restarts
    }

    /// The worker's durable journal.
    pub fn log(&self) -> &MemLog {
        &self.log
    }

    /// Handle one request (see the [module docs](self) for the idempotency
    /// contract).
    pub fn handle(&mut self, request: Request) -> Response {
        match request {
            Request::ApplyBatch { batch_seq, changes } => {
                let next = self.reports.len() as u64;
                if batch_seq < next {
                    // Duplicate delivery of an applied batch: re-ack from
                    // the cache, leaving session state untouched.
                    return Response::Applied {
                        batch_seq,
                        report: self.reports[batch_seq as usize].clone(),
                    };
                }
                assert_eq!(
                    batch_seq, next,
                    "coordinator pipelined a batch past an unacknowledged one"
                );
                // Journal first, then apply: if the apply is reached, the
                // log already explains it (the crash model only fires
                // between deliveries, so the pair is atomic anyway).
                self.log.append(
                    batch_seq,
                    &codec::to_bytes(&changes).expect("change sets encode"),
                );
                let report = self
                    .session
                    .apply(changes)
                    .expect("the coordinator pre-validated the change set");
                self.reports.push(report.clone());
                Response::Applied { batch_seq, report }
            }
            Request::PoolTail { from } => Response::PoolTail {
                values: self
                    .session
                    .dataset()
                    .pool()
                    .iter()
                    .skip(from)
                    .map(|(_, value)| value.to_string())
                    .collect(),
            },
            Request::PristineBlocks { blocks } => {
                let index = self.session.pristine_index();
                Response::PristineBlocks {
                    blocks: blocks.iter().map(|&b| index.blocks[b].clone()).collect(),
                }
            }
            Request::GatherRows => {
                let dataset = self.session.dataset();
                Response::GatherRows {
                    rows: (0..dataset.len())
                        .map(|t| dataset.row_ids(TupleId(t)).to_vec())
                        .collect(),
                }
            }
            Request::IndexClock => Response::IndexClock {
                clock: self.session.timings().index,
            },
            Request::Outcome { weights } => {
                self.session.inject_weights(weights);
                Response::Outcome {
                    report: Box::new(self.session.outcome()),
                }
            }
        }
    }

    /// Kill the worker's volatile state and recover it from the change log:
    /// a fresh session replays every journaled batch in order, re-deriving
    /// the report cache along the way.
    pub fn crash_and_recover(&mut self) {
        self.restarts += 1;
        self.session =
            CleaningSession::new(self.config.clone(), self.schema.clone(), self.rules.clone())
                .expect("a session that opened once opens again");
        self.reports.clear();
        for entry in self.log.entries().to_vec() {
            let changes: ChangeSet =
                codec::from_bytes(&entry.payload).expect("journaled frames decode");
            let report = self
                .session
                .apply(changes)
                .expect("journaled batches were valid when first applied");
            self.reports.push(report);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::csv;
    use mlnclean::Mutation;
    use rules::parse_rules;

    fn worker() -> PartitionWorker {
        let schema = Schema::new(&["City", "Zip"]);
        let rules = parse_rules("FD: City -> Zip").unwrap();
        PartitionWorker::new(CleanConfig::default(), schema, rules).unwrap()
    }

    fn insert(rows: &[(&str, &str)]) -> ChangeSet {
        [Mutation::Insert(
            rows.iter()
                .map(|(c, z)| vec![c.to_string(), z.to_string()])
                .collect(),
        )]
        .into_iter()
        .collect()
    }

    #[test]
    fn duplicate_applies_re_ack_without_reapplying() {
        let mut w = worker();
        let changes = insert(&[("BOAZ", "35016"), ("BOAZ", "35014")]);
        let first = w.handle(Request::ApplyBatch {
            batch_seq: 0,
            changes: changes.clone(),
        });
        let Response::Applied { report, .. } = first else {
            panic!("apply must ack");
        };
        // Deliver the exact same request again — a retransmit duplicate.
        let dup = w.handle(Request::ApplyBatch {
            batch_seq: 0,
            changes,
        });
        let Response::Applied {
            report: dup_report, ..
        } = dup
        else {
            panic!("duplicate must re-ack");
        };
        assert_eq!(report, dup_report);
        assert_eq!(w.applied_batches(), 1);
        assert_eq!(w.session_rows(), 2, "rows must not double-apply");
    }

    #[test]
    fn crash_recovery_replays_to_identical_state() {
        let mut w = worker();
        for (seq, batch) in [
            insert(&[("BOAZ", "35016"), ("BOAZ", "35014"), ("ELBA", "36323")]),
            [Mutation::Update(
                TupleId(2),
                dataset::AttrId(1),
                "36325".into(),
            )]
            .into_iter()
            .collect(),
            [Mutation::Delete(TupleId(0))].into_iter().collect(),
        ]
        .into_iter()
        .enumerate()
        {
            w.handle(Request::ApplyBatch {
                batch_seq: seq as u64,
                changes: batch,
            });
        }
        let before_rows = dump(&mut w);
        let before_reports = w.reports.clone();

        w.crash_and_recover();

        assert_eq!(w.restarts(), 1);
        assert_eq!(dump(&mut w), before_rows, "replayed rows must be identical");
        assert_eq!(
            w.reports, before_reports,
            "replayed reports must be identical"
        );
    }

    fn dump(w: &mut PartitionWorker) -> String {
        csv::to_csv(w.session.dataset())
    }

    impl PartitionWorker {
        fn session_rows(&self) -> usize {
            self.session.dataset().len()
        }
    }
}
