//! A partition worker: one [`CleaningSession`] behind an idempotent request
//! handler, restartable from its durable change log.
//!
//! ## Exactly-once applies over at-least-once delivery
//!
//! The RPC layer retransmits requests until a response arrives, so a worker
//! can see the same [`Request::ApplyBatch`] many times (and, after healing
//! a long outage, arbitrarily stale copies).  The handler is idempotent by
//! batch sequence number:
//!
//! * `batch_seq == next expected` — journal the change set, apply it, cache
//!   and return the report;
//! * `batch_seq <  next expected` — a duplicate of an already-applied
//!   batch: re-acknowledge from the report cache without touching state;
//! * `batch_seq >  next expected` — unreachable under the coordinator's
//!   no-pipelining rule (it never issues batch `n+1` before every worker
//!   acknowledged batch `n`); the worker panics to surface protocol bugs.
//!
//! ## Crash and replay
//!
//! [`PartitionWorker::crash_and_recover`] models a process kill: session and
//! report cache are discarded, then rebuilt from the last durable
//! [`WorkerCheckpoint`] (if one was taken) plus the journal tail — resume
//! the checkpointed [`mlnclean::SessionSnapshot`], restore its report
//! cache, then decode and re-apply every journaled frame past the
//! checkpoint cursor.  With no checkpoint the log is replayed from an empty
//! session.  Because the cleaning pipeline is deterministic, the recovered
//! session is byte-identical to the lost one, which is exactly what the
//! chaos tests pin.
//!
//! ## Checkpoints bound the journal
//!
//! [`Request::Checkpoint`] makes the worker encode a compacting session
//! snapshot through the codec, stash it (with the report cache it must be
//! able to re-acknowledge from) as durable state beside the log, and
//! [`MemLog::truncate_through`] the covered journal prefix — so a
//! long-lived stream's journal stays bounded by the checkpoint cadence
//! instead of growing forever.  The handler is idempotent: at a fixed batch
//! cursor the snapshot is deterministic, and a retransmit duplicate at the
//! same cursor is re-acknowledged from the stored checkpoint.

use crate::codec;
use crate::log::{ChangeLog, MemLog};
use crate::message::{Request, Response};
use dataset::{Schema, TupleId};
use mlnclean::{BatchReport, ChangeSet, CleanConfig, CleanError, CleaningSession, SessionSnapshot};
use rules::RuleSet;

/// A durable session checkpoint: everything recovery needs besides the
/// journal tail.  "Durable" in the same sense as [`MemLog`] — it survives
/// the simulated crash (standing in for a disk/replicated store), while the
/// live session does not.
#[derive(Debug, Clone)]
pub struct WorkerCheckpoint {
    /// Codec frame of the [`SessionSnapshot`] at checkpoint time.
    pub frame: Vec<u8>,
    /// Report cache at checkpoint time: replaying only the journal tail
    /// cannot re-derive pre-checkpoint reports, but stale duplicates of
    /// pre-checkpoint batches still need re-acknowledging.
    pub reports: Vec<BatchReport>,
    /// Batches the checkpoint covers (the apply cursor when it was taken).
    pub batches: u64,
}

/// One partition's state behind the wire (see the [module docs](self)).
#[derive(Debug)]
pub struct PartitionWorker {
    config: CleanConfig,
    schema: Schema,
    rules: RuleSet,
    session: CleaningSession,
    log: MemLog,
    reports: Vec<BatchReport>,
    checkpoint: Option<WorkerCheckpoint>,
    restarts: usize,
}

impl PartitionWorker {
    /// Open a worker with an empty session and log.  Fails like
    /// [`CleaningSession::new`] does.
    pub fn new(config: CleanConfig, schema: Schema, rules: RuleSet) -> Result<Self, CleanError> {
        let session = CleaningSession::new(config.clone(), schema.clone(), rules.clone())?;
        Ok(PartitionWorker {
            config,
            schema,
            rules,
            session,
            log: MemLog::new(),
            reports: Vec::new(),
            checkpoint: None,
            restarts: 0,
        })
    }

    /// Batches applied so far (== next expected sequence number).
    pub fn applied_batches(&self) -> u64 {
        self.reports.len() as u64
    }

    /// How many times this worker was crashed and recovered.
    pub fn restarts(&self) -> usize {
        self.restarts
    }

    /// The worker's durable journal.
    pub fn log(&self) -> &MemLog {
        &self.log
    }

    /// The worker's last durable checkpoint, if one was taken.
    pub fn checkpoint(&self) -> Option<&WorkerCheckpoint> {
        self.checkpoint.as_ref()
    }

    /// Handle one request (see the [module docs](self) for the idempotency
    /// contract).
    pub fn handle(&mut self, request: Request) -> Response {
        match request {
            Request::ApplyBatch { batch_seq, changes } => {
                let next = self.reports.len() as u64;
                if batch_seq < next {
                    // Duplicate delivery of an applied batch: re-ack from
                    // the cache, leaving session state untouched.
                    return Response::Applied {
                        batch_seq,
                        report: self.reports[batch_seq as usize].clone(),
                    };
                }
                assert_eq!(
                    batch_seq, next,
                    "coordinator pipelined a batch past an unacknowledged one"
                );
                // Journal first, then apply: if the apply is reached, the
                // log already explains it (the crash model only fires
                // between deliveries, so the pair is atomic anyway).
                self.log.append(
                    batch_seq,
                    &codec::to_bytes(&changes).expect("change sets encode"),
                );
                let report = self
                    .session
                    .apply(changes)
                    .expect("the coordinator pre-validated the change set");
                self.reports.push(report.clone());
                Response::Applied { batch_seq, report }
            }
            Request::PoolTail { from } => Response::PoolTail {
                values: self
                    .session
                    .dataset()
                    .pool()
                    .iter()
                    .skip(from)
                    .map(|(_, value)| value.to_string())
                    .collect(),
            },
            Request::PristineBlocks { blocks } => {
                let index = self.session.pristine_index();
                Response::PristineBlocks {
                    blocks: blocks.iter().map(|&b| index.blocks[b].clone()).collect(),
                }
            }
            Request::GatherRows => {
                let dataset = self.session.dataset();
                Response::GatherRows {
                    rows: (0..dataset.len())
                        .map(|t| dataset.row_ids(TupleId(t)).to_vec())
                        .collect(),
                }
            }
            Request::IndexClock => Response::IndexClock {
                clock: self.session.timings().index,
            },
            Request::Outcome { weights } => {
                self.session.inject_weights(weights);
                Response::Outcome {
                    report: Box::new(self.session.outcome()),
                }
            }
            Request::Checkpoint => {
                let batches = self.reports.len() as u64;
                // Retransmit duplicate at an unchanged cursor: re-ack from
                // the stored checkpoint without re-encoding anything.
                if let Some(cp) = &self.checkpoint {
                    if cp.batches == batches {
                        return Response::Checkpointed {
                            batches,
                            snapshot_bytes: cp.frame.len() as u64,
                        };
                    }
                }
                let frame =
                    codec::to_bytes(&self.session.snapshot()).expect("session snapshots encode");
                let snapshot_bytes = frame.len() as u64;
                self.checkpoint = Some(WorkerCheckpoint {
                    frame,
                    reports: self.reports.clone(),
                    batches,
                });
                // The checkpoint durably covers batches 0..batches, so the
                // journaled prefix is dead weight.
                if batches > 0 {
                    self.log.truncate_through(batches - 1);
                }
                Response::Checkpointed {
                    batches,
                    snapshot_bytes,
                }
            }
        }
    }

    /// Kill the worker's volatile state and recover it from durable state:
    /// resume the last checkpoint (or open a fresh session if none was
    /// taken), then replay the journal tail past the checkpoint cursor in
    /// order, re-deriving the post-checkpoint report cache along the way.
    pub fn crash_and_recover(&mut self) {
        self.restarts += 1;
        let replay_from = match &self.checkpoint {
            Some(cp) => {
                let snapshot: SessionSnapshot =
                    codec::from_bytes(&cp.frame).expect("checkpoint frames decode");
                self.session =
                    CleaningSession::resume(self.config.clone(), self.rules.clone(), snapshot)
                        .expect("a snapshot that was taken resumes");
                self.reports = cp.reports.clone();
                cp.batches
            }
            None => {
                self.session = CleaningSession::new(
                    self.config.clone(),
                    self.schema.clone(),
                    self.rules.clone(),
                )
                .expect("a session that opened once opens again");
                self.reports.clear();
                0
            }
        };
        for entry in self.log.entries().to_vec() {
            // The journal may still hold a truncated-away prefix only if the
            // checkpoint raced an append; covered entries are already inside
            // the resumed state and must not double-apply.
            if entry.batch_seq < replay_from {
                continue;
            }
            let changes: ChangeSet =
                codec::from_bytes(&entry.payload).expect("journaled frames decode");
            let report = self
                .session
                .apply(changes)
                .expect("journaled batches were valid when first applied");
            self.reports.push(report);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::csv;
    use mlnclean::Mutation;
    use rules::parse_rules;

    fn worker() -> PartitionWorker {
        let schema = Schema::new(&["City", "Zip"]);
        let rules = parse_rules("FD: City -> Zip").unwrap();
        PartitionWorker::new(CleanConfig::default(), schema, rules).unwrap()
    }

    fn insert(rows: &[(&str, &str)]) -> ChangeSet {
        [Mutation::Insert(
            rows.iter()
                .map(|(c, z)| vec![c.to_string(), z.to_string()])
                .collect(),
        )]
        .into_iter()
        .collect()
    }

    #[test]
    fn duplicate_applies_re_ack_without_reapplying() {
        let mut w = worker();
        let changes = insert(&[("BOAZ", "35016"), ("BOAZ", "35014")]);
        let first = w.handle(Request::ApplyBatch {
            batch_seq: 0,
            changes: changes.clone(),
        });
        let Response::Applied { report, .. } = first else {
            panic!("apply must ack");
        };
        // Deliver the exact same request again — a retransmit duplicate.
        let dup = w.handle(Request::ApplyBatch {
            batch_seq: 0,
            changes,
        });
        let Response::Applied {
            report: dup_report, ..
        } = dup
        else {
            panic!("duplicate must re-ack");
        };
        assert_eq!(report, dup_report);
        assert_eq!(w.applied_batches(), 1);
        assert_eq!(w.session_rows(), 2, "rows must not double-apply");
    }

    #[test]
    fn crash_recovery_replays_to_identical_state() {
        let mut w = worker();
        for (seq, batch) in [
            insert(&[("BOAZ", "35016"), ("BOAZ", "35014"), ("ELBA", "36323")]),
            [Mutation::Update(
                TupleId(2),
                dataset::AttrId(1),
                "36325".into(),
            )]
            .into_iter()
            .collect(),
            [Mutation::Delete(TupleId(0))].into_iter().collect(),
        ]
        .into_iter()
        .enumerate()
        {
            w.handle(Request::ApplyBatch {
                batch_seq: seq as u64,
                changes: batch,
            });
        }
        let before_rows = dump(&mut w);
        let before_reports = w.reports.clone();

        w.crash_and_recover();

        assert_eq!(w.restarts(), 1);
        assert_eq!(dump(&mut w), before_rows, "replayed rows must be identical");
        assert_eq!(
            w.reports, before_reports,
            "replayed reports must be identical"
        );
    }

    #[test]
    fn checkpoint_truncates_log_and_recovery_replays_only_the_tail() {
        let mut w = worker();
        let batches = [
            insert(&[("BOAZ", "35016"), ("BOAZ", "35014"), ("ELBA", "36323")]),
            [Mutation::Update(
                TupleId(2),
                dataset::AttrId(1),
                "36325".into(),
            )]
            .into_iter()
            .collect::<ChangeSet>(),
            insert(&[("ELBA", "36323")]),
            [Mutation::Delete(TupleId(0))].into_iter().collect(),
        ];
        // Apply two, checkpoint, apply two more.
        for (seq, batch) in batches.iter().take(2).enumerate() {
            w.handle(Request::ApplyBatch {
                batch_seq: seq as u64,
                changes: batch.clone(),
            });
        }
        let Response::Checkpointed {
            batches: covered,
            snapshot_bytes,
        } = w.handle(Request::Checkpoint)
        else {
            panic!("checkpoint must ack");
        };
        assert_eq!(covered, 2);
        assert!(snapshot_bytes > 0);
        assert!(w.log().is_empty(), "the covered journal prefix must go");

        for (seq, batch) in batches.iter().enumerate().skip(2) {
            w.handle(Request::ApplyBatch {
                batch_seq: seq as u64,
                changes: batch.clone(),
            });
        }
        assert_eq!(w.log().len(), 2, "only the tail is journaled");
        let before_rows = dump(&mut w);
        let before_reports = w.reports.clone();

        w.crash_and_recover();

        assert_eq!(w.restarts(), 1);
        assert_eq!(
            dump(&mut w),
            before_rows,
            "checkpoint + tail replay must reconstruct identical rows"
        );
        assert_eq!(
            w.reports, before_reports,
            "the full report cache must survive (prefix from the \
             checkpoint, tail re-derived)"
        );

        // A stale duplicate of a PRE-checkpoint batch still re-acks from
        // the restored cache without touching state.
        let rows_now = w.session_rows();
        let dup = w.handle(Request::ApplyBatch {
            batch_seq: 0,
            changes: batches[0].clone(),
        });
        let Response::Applied { report, .. } = dup else {
            panic!("duplicate must re-ack");
        };
        assert_eq!(report, before_reports[0]);
        assert_eq!(w.session_rows(), rows_now);
    }

    #[test]
    fn duplicate_checkpoint_re_acks_without_re_encoding() {
        let mut w = worker();
        w.handle(Request::ApplyBatch {
            batch_seq: 0,
            changes: insert(&[("BOAZ", "35016")]),
        });
        let Response::Checkpointed { batches, .. } = w.handle(Request::Checkpoint) else {
            panic!("checkpoint must ack");
        };
        assert_eq!(batches, 1);
        let frame = w.checkpoint().unwrap().frame.clone();
        // Retransmit duplicate: same cursor, same stored frame, same ack.
        let Response::Checkpointed { batches, .. } = w.handle(Request::Checkpoint) else {
            panic!("duplicate checkpoint must re-ack");
        };
        assert_eq!(batches, 1);
        assert_eq!(w.checkpoint().unwrap().frame, frame);

        // After another batch the cursor moved, so a new checkpoint
        // supersedes the old one.
        w.handle(Request::ApplyBatch {
            batch_seq: 1,
            changes: insert(&[("ELBA", "36323")]),
        });
        let Response::Checkpointed { batches, .. } = w.handle(Request::Checkpoint) else {
            panic!("checkpoint must ack");
        };
        assert_eq!(batches, 2);
        assert!(w.log().is_empty());
    }

    #[test]
    fn checkpoint_before_any_batch_recovers_an_empty_session() {
        let mut w = worker();
        let Response::Checkpointed { batches, .. } = w.handle(Request::Checkpoint) else {
            panic!("checkpoint must ack");
        };
        assert_eq!(batches, 0);
        w.crash_and_recover();
        assert_eq!(w.applied_batches(), 0);
        assert_eq!(w.session_rows(), 0);
        // The degenerate checkpoint must not break later applies.
        w.handle(Request::ApplyBatch {
            batch_seq: 0,
            changes: insert(&[("BOAZ", "35016")]),
        });
        assert_eq!(w.session_rows(), 1);
    }

    fn dump(w: &mut PartitionWorker) -> String {
        csv::to_csv(w.session.dataset())
    }

    impl PartitionWorker {
        fn session_rows(&self) -> usize {
            self.session.dataset().len()
        }
    }
}
