//! Domain example 2 — vehicle listings: clean a sparse CAR-style dataset that
//! additionally contains duplicate listings, demonstrating how rule-driven
//! repair plus MLNClean's final duplicate elimination collapse near-duplicate
//! records that only differ in their dirty cells.
//!
//! ```text
//! cargo run -p mlnclean --release --example car_dedup [rows]
//! ```

use datagen::CarGenerator;
use dataset::{Dataset, ErrorInjector, ErrorSpec, RepairEvaluation};
use mlnclean::{CleanConfig, MlnClean};

/// Append duplicate listings (exact copies of existing rows) to the clean
/// data, so that after corruption they become *near*-duplicates — the
/// instance-level error class the paper calls "duplicates".
fn with_duplicates(clean: &Dataset, copies: usize) -> Dataset {
    let mut out = clean.clone();
    for i in 0..copies {
        let source = clean.tuple(dataset::TupleId(i * 7 % clean.len()));
        out.push_row(source.owned_values()).expect("same schema");
    }
    out
}

fn main() {
    let rows: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_500);

    let clean = CarGenerator::default().with_rows(rows).generate();
    let clean = with_duplicates(&clean, rows / 10);
    println!(
        "listing dataset: {} rows ({} exact duplicate listings added)",
        clean.len(),
        rows / 10
    );

    // Corrupt the rule-related attributes at 5%, half typos, half replacement
    // errors — duplicates now differ from their originals in the dirty cells.
    let rules = CarGenerator::rules();
    let attrs = rules
        .constrained_attrs()
        .iter()
        .filter_map(|a| clean.schema().attr_id(a))
        .collect();
    let dirty = ErrorInjector::new(ErrorSpec::new(0.05, 3).on_attributes(attrs)).inject(&clean);
    println!(
        "injected {} errors; exact-duplicate groups before cleaning: {}",
        dirty.error_count(),
        dirty.dirty.duplicate_groups().len()
    );

    let config = CleanConfig::default()
        .with_tau(1)
        .with_agp_distance_guard(0.15);
    let outcome = MlnClean::new(config)
        .clean(&dirty.dirty, &rules)
        .expect("rules match the schema");

    let report = RepairEvaluation::evaluate(&dirty, &outcome.repaired);
    println!("\nMLNClean repair quality: {report}");
    println!(
        "rows before cleaning: {}, after duplicate elimination: {}",
        dirty.dirty.len(),
        outcome.deduplicated().len()
    );
    println!(
        "duplicate groups re-established by repairing the dirty cells: {}",
        outcome.repaired.duplicate_groups().len()
    );
    println!("total cleaning time: {:.1?}", outcome.timings.total());
}
