//! Domain example 4 — bring your own data and rules: parse a rule file, load
//! a CSV dataset, clean it, and write the repaired CSV back out.  This is the
//! workflow a downstream user of the library follows on their own data.
//!
//! ```text
//! cargo run -p mlnclean --example custom_rules [input.csv rules.txt output.csv]
//! ```
//!
//! Without arguments, the example writes a small address book to a temporary
//! directory and cleans that, so it is runnable out of the box.

use dataset::csv::{read_csv_file, write_csv_file};
use mlnclean::{CleanConfig, MlnClean};
use rules::parse_rules;
use std::path::PathBuf;

fn demo_files() -> (PathBuf, PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join("mlnclean-custom-rules-demo");
    std::fs::create_dir_all(&dir).expect("create demo directory");

    let input = dir.join("addresses.csv");
    std::fs::write(
        &input,
        "name,city,state,zip\n\
         Ada Lovelace,SEATTLE,WA,98101\n\
         Grace Hopper,SEATTLE,WA,98101\n\
         Alan Turing,SEATLE,WA,98101\n\
         Edsger Dijkstra,PORTLAND,OR,97201\n\
         Barbara Liskov,PORTLAND,OR,97201\n\
         Donald Knuth,PORTLAND,OK,97201\n",
    )
    .expect("write demo CSV");

    let rules_path = dir.join("rules.txt");
    std::fs::write(
        &rules_path,
        "# a city determines its state, a zip determines its city\n\
         FD: city -> state\n\
         FD: zip -> city\n\
         DC: zip = zip, state != state\n",
    )
    .expect("write demo rules");

    (input, rules_path, dir.join("addresses_clean.csv"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (input, rules_path, output) = if args.len() == 3 {
        (
            PathBuf::from(&args[0]),
            PathBuf::from(&args[1]),
            PathBuf::from(&args[2]),
        )
    } else {
        demo_files()
    };

    let dirty = read_csv_file(&input).expect("readable CSV input");
    let rule_text = std::fs::read_to_string(&rules_path).expect("readable rule file");
    let rules = parse_rules(&rule_text).expect("well-formed rules");
    println!(
        "loaded {} tuples from {} and {} rules from {}",
        dirty.len(),
        input.display(),
        rules.len(),
        rules_path.display()
    );

    let cleaner = MlnClean::new(CleanConfig::default().with_tau(1));
    let outcome = cleaner
        .clean(&dirty, &rules)
        .expect("rules match the schema");

    println!("\nrepairs applied:");
    for change in &outcome.fscr.changes {
        println!("  {}: {:?} -> {:?}", change.cell, change.old, change.new);
    }

    write_csv_file(&outcome.repaired, &output).expect("writable CSV output");
    println!("\nwrote the repaired dataset to {}", output.display());
}
