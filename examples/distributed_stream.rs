//! Distributed streaming: one `ChangeSet` stream routed across
//! per-partition `CleaningSession`s with a periodic cross-partition weight
//! merge.
//!
//! A synthetic HAI workload arrives in micro-batches; inserts hash to one of
//! four partitions, a late change set corrects the stream with updates and a
//! retraction, and every merge round folds the partitions' per-block
//! evidence back together.  The final outcome is byte-identical to a single
//! `CleaningSession` fed the same stream — which the example verifies.
//!
//! Run with:
//!
//! ```bash
//! cargo run --example distributed_stream
//! ```

use dataset::{csv, TupleId};
use distributed::DistributedStreamingSession;
use mlnclean::{ChangeSet, CleanConfig, CleaningSession};

fn main() {
    // A seeded dirty HAI workload (5% error rate) streamed in 8 batches
    // across 4 partitions, merging weights every 2 batches.
    let generator = datagen::HaiGenerator::default()
        .with_rows(400)
        .with_providers(20);
    let dirty = generator.dirty(0.05, 0.5, 1);
    let rules = datagen::HaiGenerator::rules();
    let config = CleanConfig::default()
        .with_tau(2)
        .with_agp_distance_guard(0.15);
    let schema = dirty.dirty.schema().clone();

    let mut streamed =
        DistributedStreamingSession::new(config.clone(), schema.clone(), rules.clone(), 4, 2)
            .expect("the HAI rules match the HAI schema");
    // The single-session shadow the distributed stream must match.
    let mut single =
        CleaningSession::new(config, schema, rules).expect("the HAI rules match the HAI schema");

    println!(
        "streaming {} rows across {} partitions (merge every {} batches)\n",
        dirty.dirty.len(),
        streamed.partition_count(),
        streamed.merge_every()
    );
    println!("batch  rows  total  dirty-blocks  partition-sizes");
    for rows in datagen::row_batches(&dirty.dirty, 8) {
        let changes = ChangeSet::inserting(rows);
        single
            .apply(changes.clone())
            .expect("rows match the schema");
        let report = streamed.apply(changes).expect("rows match the schema");
        println!(
            "{:>5}  {:>4}  {:>5}  {:>6}/{:<5}  {:?}",
            report.batch,
            report.rows,
            report.total_rows,
            report.dirty_blocks,
            report.total_blocks,
            streamed.partition_sizes(),
        );
    }

    // The stream corrects itself: fix two cells, retract one row.  Updates
    // and deletes follow their tuple's home partition automatically.
    let provider = dirty
        .dirty
        .schema()
        .attr_id("ProviderID")
        .expect("the HAI schema has a ProviderID attribute");
    let value = dirty.dirty.value(TupleId(0), provider).to_string();
    let fixes = ChangeSet::new()
        .update(TupleId(3), provider, value.clone())
        .update(TupleId(7), provider, value)
        .delete(TupleId(11));
    single.apply(fixes.clone()).expect("fixes are in bounds");
    let report = streamed.apply(fixes).expect("fixes are in bounds");
    println!(
        "\nmutation set: {} cells updated, {} row retracted, {} rows remain",
        report.updated_cells, report.deleted_rows, report.total_rows
    );

    let streamed = streamed.finish();
    let single = single.finish();
    assert_eq!(
        csv::to_csv(&streamed.repaired),
        csv::to_csv(&single.repaired),
        "distributed streaming and the single session must agree byte for byte"
    );
    assert_eq!(streamed.agp, single.agp, "AGP provenance must agree");
    assert_eq!(streamed.rsc, single.rsc, "RSC provenance must agree");
    assert_eq!(streamed.fscr, single.fscr, "FSCR provenance must agree");

    let partitions = streamed.partitions.as_ref().expect("distributed report");
    println!(
        "final: {} rows over {} partitions (skew {:.2}), {} shared γs merged, {} duplicates removed",
        streamed.repaired.len(),
        partitions.parts.len(),
        partitions.skew(),
        partitions.shared_gammas,
        streamed.repaired.len() - streamed.deduplicated().len(),
    );
    println!(
        "coordinator: {} merge rounds, weight-merge {:?}, gather {:?}",
        streamed.timings.merge_rounds, streamed.timings.weight_merge, streamed.timings.gather
    );
    println!("byte-identical to the single-session stream ✓");
}
