//! Domain example 3 — scale-out cleaning: run the distributed MLNClean
//! version (Section 6 of the paper) over a TPC-H-style customer × line-item
//! join, showing the partition sizes, the cross-partition weight adjustment
//! (Eq. 6), and the speedup from adding workers.
//!
//! ```text
//! cargo run -p mlnclean --release --example distributed_tpch [rows]
//! ```

use datagen::TpchGenerator;
use dataset::RepairEvaluation;
use distributed::DistributedMlnClean;
use mlnclean::CleanConfig;

fn main() {
    let rows: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4_000);

    let generator = TpchGenerator::default().with_rows(rows);
    let dirty = generator.dirty(0.05, 0.5, 11);
    let rules = TpchGenerator::rules();
    println!(
        "TPC-H-style dataset: {} rows, {} injected errors, rule: {}",
        dirty.dirty.len(),
        dirty.error_count(),
        rules.iter().next().expect("one rule")
    );

    let config = CleanConfig::default()
        .with_tau(2)
        .with_agp_distance_guard(0.15);
    let mut baseline_time = None;
    for workers in [1usize, 2, 4, 8] {
        let cleaner = DistributedMlnClean::new(workers, config.clone());
        // The unified Timings sums per-worker stage clocks (aggregate worker
        // time, ~invariant in worker count); the scaling story is the
        // elapsed wall time of the whole run, so measure that here.
        let started = std::time::Instant::now();
        let outcome = cleaner
            .clean(&dirty.dirty, &rules)
            .expect("rules match the schema");
        let wall = started.elapsed();
        let report = RepairEvaluation::evaluate(&dirty, &outcome.repaired);
        let speedup = baseline_time.get_or_insert(wall.as_secs_f64()).max(1e-9)
            / wall.as_secs_f64().max(1e-9);
        println!(
            "\nworkers = {workers}: F1 = {:.3}, wall = {:.1?}, aggregate worker time = {:.1?} (speedup ×{:.2})",
            report.f1(),
            wall,
            outcome.timings.total(),
            speedup
        );
        let partitions = outcome.partitions.as_ref().expect("distributed report");
        println!(
            "  partition sizes: {:?}, skew = {:.2}",
            partitions.sizes(),
            partitions.skew()
        );
        println!(
            "  phases: partition {:.1?}, local learning {:.1?} (index+AGP+weights, summed over workers), weight merge {:.1?} ({} shared γs), local cleaning {:.1?} (RSC+FSCR, summed), gather {:.1?}",
            outcome.timings.partition,
            outcome.timings.index + outcome.timings.agp + outcome.timings.weight_learning,
            outcome.timings.weight_merge,
            partitions.shared_gammas,
            outcome.timings.rsc + outcome.timings.fscr,
            outcome.timings.gather
        );
    }
}
