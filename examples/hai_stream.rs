//! Streaming ingest with the incremental `CleaningSession`.
//!
//! A synthetic HAI workload arrives in micro-batches; after every batch the
//! session re-cleans only what the batch touched and reports the repair
//! quality so far.  The final outcome is byte-identical to one batch
//! `MlnClean::clean` run over all rows — which the example verifies.
//!
//! Run with:
//!
//! ```bash
//! cargo run --example hai_stream
//! ```

use dataset::{csv, RepairEvaluation};
use mlnclean::{CleanConfig, CleaningSession, MlnClean};

fn main() {
    // A seeded dirty HAI workload (5% error rate) streamed in 8 batches.
    let generator = datagen::HaiGenerator::default()
        .with_rows(400)
        .with_providers(20);
    let dirty = generator.dirty(0.05, 0.5, 1);
    let rules = datagen::HaiGenerator::rules();
    let config = CleanConfig::default()
        .with_tau(2)
        .with_agp_distance_guard(0.15);

    let mut session =
        CleaningSession::new(config.clone(), dirty.dirty.schema().clone(), rules.clone())
            .expect("the HAI rules match the HAI schema");

    println!("streaming {} rows in 8 micro-batches\n", dirty.dirty.len());
    println!("batch  rows  total  dirty-blocks  touched-groups  cells-off-truth");
    for batch in datagen::row_batches(&dirty.dirty, 8) {
        let report = session.ingest_batch(batch).expect("rows match the schema");
        let outcome = session.outcome();
        // How far the rows ingested so far still are from the ground truth.
        let prefix_truth = dirty
            .clean
            .project_rows(&outcome.repaired.tuple_ids().collect::<Vec<_>>());
        let cells_off = outcome.repaired.diff_cells(&prefix_truth).len();
        println!(
            "{:>5}  {:>4}  {:>5}  {:>6}/{:<5}  {:>8}/{:<5}  {:>6}",
            report.batch,
            report.rows,
            report.total_rows,
            report.dirty_blocks,
            report.total_blocks,
            report.touched_groups,
            report.total_groups,
            cells_off,
        );
    }

    let streamed = session.finish();

    // The incremental result is byte-identical to one batch run.
    let batch = MlnClean::new(config)
        .clean(&dirty.dirty, &rules)
        .expect("the batch pipeline cleans the same data");
    assert_eq!(
        csv::to_csv(&streamed.repaired),
        csv::to_csv(&batch.repaired),
        "incremental and batch runs must agree byte for byte"
    );

    let report = RepairEvaluation::evaluate(&dirty, &streamed.repaired);
    println!(
        "\nfinal: {} rows, {} duplicates removed, {}",
        streamed.repaired.len(),
        streamed.repaired.len() - streamed.deduplicated().len(),
        report
    );
    println!("stream timings: {:?} total", streamed.timings.total());
    println!("byte-identical to the one-shot batch run ✓");
}
