//! Domain example 1 — healthcare data: generate a synthetic HAI-style
//! hospital-measures dataset, corrupt it following the paper's protocol,
//! clean it with MLNClean, and compare against the HoloClean-style baseline.
//!
//! ```text
//! cargo run -p mlnclean --release --example hospital_cleaning [rows] [error_rate]
//! ```

use datagen::HaiGenerator;
use dataset::RepairEvaluation;
use holoclean::{HoloClean, HoloCleanConfig};
use mlnclean::{evaluate_agp, evaluate_fscr, evaluate_rsc, CleanConfig, MlnClean};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rows: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(2_000);
    let error_rate: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.05);

    println!("generating a synthetic HAI dataset with {rows} rows, corrupting {:.0}% of the rule-related cells", error_rate * 100.0);
    let generator = HaiGenerator::default().with_rows(rows);
    let dirty = generator.dirty(error_rate, 0.5, 7);
    let rules = HaiGenerator::rules();
    println!(
        "injected {} errors over {} tuples; rules:",
        dirty.error_count(),
        dirty.dirty.len()
    );
    for rule in rules.iter() {
        println!("  {rule}");
    }

    // MLNClean: detection + repair, τ = 2 with the AGP merge guard.
    let config = CleanConfig::default()
        .with_tau(2)
        .with_agp_distance_guard(0.15);
    let outcome = MlnClean::new(config)
        .clean(&dirty.dirty, &rules)
        .expect("rules match the schema");
    let report = RepairEvaluation::evaluate(&dirty, &outcome.repaired);

    println!("\nMLNClean: {report}");
    println!("  stage timings: index {:.1?}, AGP {:.1?}, weight learning {:.1?}, RSC {:.1?}, FSCR {:.1?}",
        outcome.timings.index, outcome.timings.agp, outcome.timings.weight_learning,
        outcome.timings.rsc, outcome.timings.fscr);
    println!("  AGP : {}", evaluate_agp(&dirty, &rules, &outcome.agp));
    println!("  RSC : {}", evaluate_rsc(&dirty, &rules, &outcome.rsc));
    println!("  FSCR: {}", evaluate_fscr(&dirty, &outcome.fscr));

    // The HoloClean-style baseline with oracle (100% accurate) detection —
    // the comparison protocol of Section 7.2 of the paper.
    let baseline = HoloClean::new(HoloCleanConfig::default());
    let repair = baseline.repair(&dirty.dirty, &rules, &dirty.erroneous_cells());
    let baseline_report = RepairEvaluation::evaluate(&dirty, &repair.repaired);
    println!("\nHoloClean-style baseline (oracle detection): {baseline_report}");
    println!(
        "  repair runtime: {:.1?} (training {:.1?} + inference {:.1?})",
        repair.total_time(),
        repair.training_time,
        repair.inference_time
    );

    println!(
        "\nsummary: MLNClean F1 = {:.3} in {:.1?} vs baseline F1 = {:.3} in {:.1?}",
        report.f1(),
        outcome.timings.total(),
        baseline_report.f1(),
        repair.total_time()
    );
}
