//! Quickstart: clean the paper's six-tuple hospital sample (Table 1) with the
//! three rules of Example 1 and print what happened.
//!
//! ```text
//! cargo run -p mlnclean --example quickstart
//! ```

use dataset::{sample_hospital_dataset, sample_hospital_truth, TupleId};
use mlnclean::{CleanConfig, MlnClean};
use rules::sample_hospital_rules;

fn main() {
    // The dirty input: Table 1 of the paper.  Four cells are wrong — a typo
    // (t2.CT = "DOTH"), a replacement error plus a wrong phone number on t3,
    // and a schema-level violation (t4.ST = "AK").
    let dirty = sample_hospital_dataset();
    let rules = sample_hospital_rules();

    println!("rules:");
    for rule in rules.iter() {
        println!("  {rule}");
    }
    println!("\ndirty data:\n{dirty}");

    // Clean with the paper's running-example configuration (τ = 1).
    let cleaner = MlnClean::new(CleanConfig::default().with_tau(1));
    let outcome = cleaner
        .clean(&dirty, &rules)
        .expect("rules match the schema");

    println!("repaired data:\n{}", outcome.repaired);
    println!(
        "after duplicate elimination ({} rows):\n{}",
        outcome.deduplicated().len(),
        outcome.deduplicated()
    );

    // Show the individual decisions the pipeline took.
    println!("abnormal groups merged by AGP:");
    for merge in &outcome.agp.merges {
        println!(
            "  block {}: {:?} -> {:?} ({} tuple(s))",
            merge.rule,
            merge.abnormal_key,
            merge.target_key,
            merge.tuples.len()
        );
    }
    println!("γ replacements made by RSC:");
    for repair in &outcome.rsc.repairs {
        println!(
            "  block {}: {:?} -> {:?} for {:?}",
            repair.rule, repair.from_values, repair.to_values, repair.tuples
        );
    }
    println!("cells rewritten at fusion time:");
    for change in &outcome.fscr.changes {
        println!("  {}: {:?} -> {:?}", change.cell, change.old, change.new);
    }

    // Verify against the ground truth of the running example.
    let truth = sample_hospital_truth();
    assert_eq!(
        outcome.repaired, truth,
        "the running example is cleaned exactly"
    );
    let st = dirty.schema().attr_id("ST").unwrap();
    assert_eq!(outcome.repaired.value(TupleId(3), st), "AL");
    println!("\nall four erroneous cells repaired; output matches the paper's expected result");
}
