//! Live mutations in a `CleaningSession`: updates and deletes, not just
//! appends.
//!
//! A CAR workload is cleaned once, then the "feed" starts correcting itself:
//! a retraction deletes a row, a correction rewrites a cell, and a late batch
//! inserts new rows — all in one typed [`ChangeSet`].  After every change set
//! the session re-cleans only the blocks the mutations touched, and the
//! result stays byte-identical to a from-scratch batch run over the net
//! surviving rows (which the example verifies).
//!
//! Run with:
//!
//! ```bash
//! cargo run --example session_mutations
//! ```

use dataset::{csv, Dataset, TupleId};
use mlnclean::{ChangeSet, CleanConfig, CleaningSession, MlnClean};

fn main() {
    let generator = datagen::CarGenerator::default().with_rows(300);
    let dirty = generator.dirty(0.05, 0.5, 1);
    let rules = datagen::CarGenerator::rules();
    let config = CleanConfig::default()
        .with_tau(1)
        .with_agp_distance_guard(0.15);

    let mut session =
        CleaningSession::new(config.clone(), dirty.dirty.schema().clone(), rules.clone())
            .expect("the CAR rules match the CAR schema");

    // Reference model: the plain rows the session should be equivalent to.
    let mut model: Vec<Vec<String>> = dirty.dirty.tuples().map(|t| t.owned_values()).collect();

    // Initial bulk load + first clean.
    session.ingest_dataset(&dirty.dirty).expect("same schema");
    let outcome = session.outcome();
    println!(
        "initial clean: {} rows -> {} after dedup",
        outcome.repaired.len(),
        outcome.deduplicated().len()
    );

    // The live feed: one change set mixing a retraction, a cell correction
    // and a late batch of inserts.  Mutations apply in order; the delete
    // shifts every later tuple id down by one, exactly like a batch rebuild
    // over the surviving rows would.
    let model_attr = dirty.dirty.schema().attr_id("Model").unwrap();
    // "Correct" row 7's model name to another model seen in the feed.
    let corrected = model[8][model_attr.index()].clone();
    let late_rows: Vec<Vec<String>> = model[..3].to_vec();
    let changes = ChangeSet::new()
        .delete(TupleId(42))
        .update(TupleId(7), model_attr, corrected.clone())
        .insert(late_rows.clone());

    // Mirror the mutations on the model.
    model.remove(42);
    model[7][model_attr.index()] = corrected;
    model.extend(late_rows);

    let report = session.apply(changes).expect("mutations are in bounds");
    println!(
        "change set #{}: +{} rows, {} cell updates, -{} rows -> {} total; \
         {}/{} blocks dirty, {} groups touched",
        report.batch,
        report.rows,
        report.updated_cells,
        report.deleted_rows,
        report.total_rows,
        report.dirty_blocks,
        report.total_blocks,
        report.touched_groups,
    );

    // Only the touched blocks are re-cleaned...
    let streamed = session.finish();

    // ...yet the result is byte-identical to cleaning the net rows from
    // scratch.
    let mut net = Dataset::new(dirty.dirty.schema().clone());
    net.extend_rows(model).expect("model rows fit the schema");
    let batch = MlnClean::new(config)
        .clean(&net, &rules)
        .expect("the batch pipeline cleans the same data");
    assert_eq!(
        csv::to_csv(&streamed.repaired),
        csv::to_csv(&batch.repaired),
        "mutated session and net batch run must agree byte for byte"
    );
    assert_eq!(streamed.agp, batch.agp);
    assert_eq!(streamed.rsc, batch.rsc);
    assert_eq!(streamed.fscr, batch.fscr);

    println!(
        "final: {} rows, {} after dedup — byte-identical to a batch clean of the net rows ✓",
        streamed.repaired.len(),
        streamed.deduplicated().len()
    );
}
