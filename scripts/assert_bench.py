#!/usr/bin/env python3
"""Invariant checks and the CI regression gate for the BENCH_*.json artifacts.

Usage:
    assert_bench.py smoke  results/BENCH_smoke.json
    assert_bench.py ladder results/BENCH_ladder.json [--baseline BENCH_ladder.json]
                                                     [--tolerance 0.25]

`smoke` asserts the streaming/incremental/distributed probes of the smoke
artifact kept their correctness invariants (byte-identity with the batch
engine, dirty blocks < total blocks, real mutations applied).

`ladder` asserts the structural invariants of the benchmark ladder (monotone
rung sizes, byte-identity wherever it was checked, errors injected, RSS
recorded when the meter is available, sane latency percentiles, and the
group-scoped re-clean probe: a single-cell mutation must re-clean a strict,
non-empty subset of the MLN groups) and, when `--baseline` points at a
committed artifact, gates throughput, peak RSS and mutation tail latency
against it: the run fails if any engine's effective throughput regresses by
more than the tolerance, its peak RSS grows by more than the tolerance, or
the mutation probe's p50/p99 latency regresses past the tolerance (plus a
small absolute grace for timer noise on sub-100ms probes).
Set BENCH_GATE_SKIP=1 to skip the baseline gate (e.g. while intentionally
re-baselining); the invariant checks always run.

The same `ladder` subcommand checks every per-workload artifact
(`BENCH_ladder.json`, `BENCH_ladder_hai.json`, `BENCH_ladder_car.json`).
"""

import argparse
import json
import math
import os
import sys

ENGINES = ("batch", "incremental", "distributed")
STAGES = (
    "index",
    "agp",
    "weight_learning",
    "rsc",
    "fscr",
    "dedup",
    "partition",
    "weight_merge",
    "gather",
)


def fail(msg):
    sys.exit(f"assert_bench: FAIL: {msg}")


def check(cond, msg):
    if not cond:
        fail(msg)


def check_codec_header(d, where):
    check(isinstance(d.get("codec_version"), int) and d["codec_version"] >= 1,
          f"{where}: artifact lacks a codec_version header (wire artifacts "
          f"must name the frame format they were written under)")


def check_smoke(d):
    check_codec_header(d, "smoke")
    s = d["streaming"]
    check(s["hai_stream"]["final_matches_one_shot"] is True,
          "streamed HAI result diverged from the one-shot run")
    r = s["incremental_reclean"]
    check(r["matches_full_reclean"] is True,
          "incremental re-clean diverged from the full batch re-run")
    check(r["dirty_blocks"] < r["total_blocks"],
          f"the non-acura tail dirtied every block: {r}")
    print("streaming smoke ok:", r["dirty_blocks"], "of", r["total_blocks"],
          "blocks dirty, speedup", r["speedup"])
    m = s["mutation"]
    check(m["matches_full_reclean"] is True,
          f"mutated session diverged from the batch re-run: {m}")
    check(m["dirty_blocks"] < m["total_blocks"],
          f"mutations dirtied every block: {m}")
    check(m["deleted_rows"] > 0 and m["updated_cells"] > 0,
          f"the mutation probe applied no real mutations: {m}")
    print("mutation smoke ok:", m["deleted_rows"], "deletes +",
          m["updated_cells"], "updates,", m["dirty_blocks"], "of",
          m["total_blocks"], "blocks dirty, speedup", m["speedup"])
    ds = s["distributed_stream"]
    check(ds["matches_single_session"] is True,
          f"distributed stream diverged from the single session: {ds}")
    check(ds["partitions"] == 2 and ds["batches"] == 8, str(ds))
    check(1 <= ds["merge_rounds"] <= ds["batches"], str(ds))
    check(sum(ds["partition_sizes"]) > 0, str(ds))
    print("distributed-stream smoke ok:", ds["partitions"], "partitions,",
          ds["merge_rounds"], "merge rounds,",
          "%.6fs" % ds["per_round_merge_seconds"], "per round,",
          ds["shared_gammas"], "shared gammas, byte-identical to the",
          "single-session stream")
    sr = s["suspend_resume"]
    check(sr["matches_uninterrupted"] is True,
          f"suspended+resumed session diverged from the uninterrupted run: {sr}")
    check(sr["snapshot_bytes"] > 0, f"the snapshot encoded no bytes: {sr}")
    check(sr["suspended_at_batch"] > 0, f"the suspend fired before any batch: {sr}")
    print("suspend-resume smoke ok: suspended after batch",
          sr["suspended_at_batch"], "into a", sr["snapshot_bytes"],
          "byte snapshot, resumed byte-identical to the uninterrupted run")
    w = s["simulated_transport"]
    check(w["matches_single_session"] is True,
          f"wire session diverged from the single session: {w}")
    check(w["messages_sent"] - w["messages_dropped"] + w["messages_duplicated"]
          == w["messages_delivered"],
          f"transport counters do not balance "
          f"(sent - dropped + duplicated != delivered): {w}")
    check(w["messages_dropped"] > 0,
          f"the hostile schedule never dropped a datagram: {w}")
    check(w["retransmits"] > 0,
          f"loss never forced the RPC layer to retransmit: {w}")
    check(w["worker_restarts"] >= 1,
          f"the scheduled worker crash never fired: {w}")
    check(w["bytes_sent"] > 0, f"no bytes crossed the codec: {w}")
    print("simulated-transport smoke ok:", w["messages_sent"], "sent,",
          w["messages_dropped"], "dropped,", w["messages_duplicated"],
          "duplicated,", w["retransmits"], "retransmits,",
          w["worker_restarts"], "worker restart(s) replayed,",
          "byte-identical to the single session")


def check_ladder(d, fresh=True, tolerance=0.25):
    check(d["experiment"] == "ladder", "not a ladder artifact")
    if fresh:
        # Committed baselines may predate the wire codec; every freshly
        # produced artifact must carry the versioned header.
        check_codec_header(d, "ladder")
    rungs = d["rungs"]
    check(len(rungs) >= 1, "the ladder ran no rungs")
    sizes = [r["rows"] for r in rungs]
    check(sizes == sorted(set(sizes)),
          f"rung sizes must be strictly increasing: {sizes}")
    rss_supported = d["rss_meter"]["supported"]
    budgeted_rungs = 0
    rss_asserted_rungs = 0

    for i, r in enumerate(rungs):
        where = f"rung {r['rows']}"
        check(r["batches"] == math.ceil(r["rows"] / d["batch_rows"]),
              f"{where}: batch count does not cover the rows")
        check(r["injected_errors"] > 0, f"{where}: no errors injected")

        ident = r["byte_identity"]
        if r["rows"] <= d["identity_limit"]:
            check(ident["checked"] is True,
                  f"{where}: identity must be checked at rungs <= identity_limit")
        if ident["checked"]:
            check(ident["incremental_matches_batch"] is True,
                  f"{where}: incremental engine diverged from batch")
            check(ident["distributed_matches_batch"] is True,
                  f"{where}: distributed engine diverged from batch")

        for name in ENGINES:
            e = r["engines"][name]
            tag = f"{where}/{name}"
            check(e["ingest_rows_per_sec"] > 0, f"{tag}: zero ingest throughput")
            check(e["ingest_seconds"] > 0 and e["outcome_seconds"] > 0,
                  f"{tag}: non-positive timings")
            check(e["total_seconds"] >= e["outcome_seconds"],
                  f"{tag}: total below outcome")
            for stage in STAGES:
                check(e["stage_seconds"][stage] >= 0, f"{tag}: negative {stage}")
            if rss_supported:
                check(isinstance(e["peak_rss_kib"], int) and e["peak_rss_kib"] > 0,
                      f"{tag}: RSS meter is supported but no peak recorded")

        # Budgeted probe: the same rung under a fixed memory budget must stay
        # byte-identical to the unbudgeted session at EVERY rung the probe
        # ran (including the nightly 10^6 rung, above identity_limit).  The
        # peak-RSS-under-budget claim is only made where the rung flags
        # `rss_asserted`: above that, outcome-time transients no budget
        # governs (resolved FSCR strings, the report itself) dominate the
        # whole-process peak and the number would be a lie either way.
        budgeted = r.get("budgeted")
        if budgeted is not None:
            budgeted_rungs += 1
            check(budgeted["matches_unbudgeted"] is True,
                  f"{where}: budgeted session diverged from the unbudgeted run")
            check(budgeted["budget_kib"] > 0, f"{where}: empty memory budget")
            if rss_supported:
                rss = budgeted["peak_rss_kib"]
                check(isinstance(rss, int) and rss > 0,
                      f"{where}: RSS meter is supported but the budgeted probe "
                      f"recorded no peak")
                if budgeted["rss_asserted"]:
                    # The claim is about growth: peak minus the post-reset
                    # floor, so memory the allocator retains from earlier
                    # rungs cannot fail an otherwise well-behaved probe.
                    rss_asserted_rungs += 1
                    floor = budgeted.get("rss_floor_kib") or 0
                    limit = floor + (1.0 + tolerance) * budgeted["budget_kib"]
                    check(rss <= limit,
                          f"{where}: budgeted peak RSS {rss} KiB exceeds the "
                          f"{floor} KiB floor + {budgeted['budget_kib']} KiB "
                          f"budget (+{tolerance:.0%} allowance = "
                          f"{limit:.0f} KiB)")

        mut = r["mutation_latency"]
        if i == len(rungs) - 1:
            check(mut is not None, f"{where}: largest rung lacks the mutation probe")
            check(mut["samples"] > 0, f"{where}: no mutation samples")
            check(0 < mut["p50_seconds"] <= mut["p99_seconds"] <= mut["max_seconds"],
                  f"{where}: mutation percentiles out of order: {mut}")
            check(0 < mut["recleaned_groups"] < mut["total_groups"],
                  f"{where}: a single-cell mutation must re-clean a strict, "
                  f"non-empty subset of the groups, got "
                  f"{mut['recleaned_groups']} of {mut['total_groups']}")
        else:
            check(mut is None, f"{where}: mutation probe ran on a non-final rung")

    # The RSS claim may be scoped, but it may not silently vanish: once a
    # run carries budgeted rungs and a working meter, at least one rung must
    # actually assert its peak against the budget.
    if budgeted_rungs > 0 and rss_supported:
        check(rss_asserted_rungs >= 1,
              "budgeted rungs ran with a working RSS meter but no rung "
              "asserted its peak against the budget (rss_asserted is false "
              "everywhere — the out-of-core claim lost its CI teeth)")

    print(f"ladder invariants ok: rungs {sizes}, "
          f"identity checked on {sum(r['byte_identity']['checked'] for r in rungs)}, "
          f"rss meter {'on' if rss_supported else 'off'}, "
          f"budgeted probe on {budgeted_rungs} "
          f"(rss asserted on {rss_asserted_rungs})")


def throughput(rung, engine):
    return rung["rows"] / max(rung["engines"][engine]["total_seconds"], 1e-9)


def gate_ladder(new, base, tolerance):
    if os.environ.get("BENCH_GATE_SKIP") == "1":
        print("ladder gate SKIPPED (BENCH_GATE_SKIP=1)")
        return
    base_by_rows = {r["rows"]: r for r in base["rungs"]}
    both_rss_supported = (new["rss_meter"]["supported"]
                          and base["rss_meter"]["supported"])
    compared = 0
    skipped = 0
    for r in new["rungs"]:
        b = base_by_rows.get(r["rows"])
        if b is None:
            continue
        for name in ENGINES:
            tag = f"rung {r['rows']}/{name}"
            new_tp, base_tp = throughput(r, name), throughput(b, name)
            check(new_tp >= (1.0 - tolerance) * base_tp,
                  f"{tag}: throughput regressed {base_tp:.0f} -> {new_tp:.0f} rows/s "
                  f"(> {tolerance:.0%} drop); re-baseline deliberately or set "
                  f"BENCH_GATE_SKIP=1")
            compared += 1
            new_rss = r["engines"][name]["peak_rss_kib"]
            base_rss = b["engines"][name]["peak_rss_kib"]
            if isinstance(new_rss, int) and isinstance(base_rss, int):
                check(new_rss <= (1.0 + tolerance) * base_rss,
                      f"{tag}: peak RSS grew {base_rss} -> {new_rss} KiB "
                      f"(> {tolerance:.0%}); re-baseline deliberately or set "
                      f"BENCH_GATE_SKIP=1")
                compared += 1
            elif both_rss_supported:
                # Both runs claim a working meter, yet a reading is missing:
                # that is a broken artifact, not a platform limitation, and
                # silently skipping it would let an RSS regression ship.
                fail(f"{tag}: both artifacts report rss_meter.supported but "
                     f"peak_rss_kib is {new_rss!r} (run) vs {base_rss!r} "
                     f"(baseline) — a supported meter must record integers")
            else:
                skipped += 1
        # Mutation tail-latency gate: where both runs probed the same rung,
        # p50 and p99 may not regress past the tolerance.  The absolute 50ms
        # grace keeps sub-100ms probes from failing on timer noise alone.
        mut, base_mut = r["mutation_latency"], b["mutation_latency"]
        if mut is not None and base_mut is not None:
            for q in ("p50_seconds", "p99_seconds"):
                limit = (1.0 + tolerance) * base_mut[q] + 0.05
                check(mut[q] <= limit,
                      f"rung {r['rows']}: mutation {q} regressed "
                      f"{base_mut[q]:.6f}s -> {mut[q]:.6f}s (limit {limit:.6f}s); "
                      f"re-baseline deliberately or set BENCH_GATE_SKIP=1")
                compared += 1
    check(compared > 0, "baseline shares no rungs with this run")
    print(f"ladder gate ok: {compared} points within "
          f"{tolerance:.0%} of the baseline, {skipped} skipped "
          f"(RSS meter unsupported)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("kind", choices=["smoke", "ladder"])
    parser.add_argument("artifact")
    parser.add_argument("--baseline", help="committed BENCH_ladder.json to gate against")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative regression (default 0.25)")
    args = parser.parse_args()

    with open(args.artifact) as f:
        d = json.load(f)
    if args.kind == "smoke":
        check_smoke(d)
    else:
        check_ladder(d, tolerance=args.tolerance)
        if args.baseline:
            with open(args.baseline) as f:
                base = json.load(f)
            check_ladder(base, fresh=False, tolerance=args.tolerance)
            gate_ladder(d, base, args.tolerance)


if __name__ == "__main__":
    main()
