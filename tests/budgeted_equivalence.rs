//! Out-of-core equivalence: a `CleaningSession` under a (deliberately
//! absurd) 1-byte memory budget — which forces every clean block cache to
//! spill, every distance memo to drop and every memoised fusion to be
//! evicted at each enforcement point — must produce **byte-identical**
//! repaired/deduplicated CSV and identical AGP/RSC/FSCR provenance to the
//! unbudgeted session and to a fresh batch run over the net surviving rows.
//! Likewise suspend/resume: serializing a [`mlnclean::SessionSnapshot`]
//! through the `mlnw` codec mid-stream and resuming in a fresh session must
//! not perturb any later outcome.

use dataset::{csv, AttrId, Dataset, TupleId};
use mlnclean::{ChangeSet, CleanConfig, CleaningSession, MlnClean, Report, SessionSnapshot};
use rules::RuleSet;

/// Byte-level comparison of two outcomes: output CSVs plus full provenance.
fn assert_outcomes_identical(label: &str, a: &Report, b: &Report) {
    assert_eq!(
        csv::to_csv(&a.repaired),
        csv::to_csv(&b.repaired),
        "{label}: repaired CSV diverged"
    );
    assert_eq!(
        csv::to_csv(a.deduplicated()),
        csv::to_csv(b.deduplicated()),
        "{label}: deduplicated CSV diverged"
    );
    assert_eq!(a.agp, b.agp, "{label}: AGP provenance diverged");
    assert_eq!(a.rsc, b.rsc, "{label}: RSC provenance diverged");
    assert_eq!(a.fscr, b.fscr, "{label}: FSCR provenance diverged");
}

/// Drive one session through a fixed mutation-rich script: micro-batch
/// ingest with periodic intermediate outcomes (each outcome is a spill
/// point under a budget), then a couple of cell updates and front/middle
/// deletes (updates fault spilled blocks in via the dirty path, deletes via
/// the id-remap path), and a final outcome.  Returns the final report and
/// the surviving model rows.
fn run_script(
    dirty: &Dataset,
    rules: &RuleSet,
    config: CleanConfig,
) -> (Report, Vec<Vec<String>>, CleaningSession) {
    let mut model: Vec<Vec<String>> = dirty.tuples().map(|t| t.owned_values()).collect();
    let mut session = CleaningSession::new(config, dirty.schema().clone(), rules.clone())
        .expect("rules match the schema");
    for (i, chunk) in model.chunks(16).enumerate() {
        session
            .ingest_batch(chunk.to_vec())
            .expect("rows match the schema");
        if i % 3 == 2 {
            let _ = session.outcome();
        }
    }

    let n = model.len();
    // Rehome a few cells (copy a value from the next row so the update is
    // realistic for the workload's domain).
    let mut changes = ChangeSet::new();
    for &t in &[0, n / 3, n - 1] {
        let donor = (t + 1) % n;
        let value = model[donor][0].clone();
        model[t][0] = value.clone();
        changes = changes.update(TupleId(t), AttrId(0), value);
    }
    session.apply(changes).expect("updates are in bounds");
    let _ = session.outcome();

    // Delete one front row and one middle row (sequential semantics: the
    // second id is interpreted after the first shift).
    let mut changes = ChangeSet::new();
    let front = 1.min(n - 1);
    changes = changes.delete(TupleId(front));
    model.remove(front);
    let mid = (n / 2).min(model.len() - 1);
    changes = changes.delete(TupleId(mid));
    model.remove(mid);
    session.apply(changes).expect("deletes are in bounds");

    let report = session.outcome();
    (report, model, session)
}

/// The budgeted session must match the unbudgeted session and the batch
/// ground truth on every workload, in serial and parallel mode — while
/// actually spilling, faulting in and evicting along the way.
fn check_workload(label: &str, dirty: &Dataset, rules: &RuleSet, base: CleanConfig) {
    for parallel in [false, true] {
        let config = base.clone().with_parallel(parallel);
        let (unbudgeted, model, plain) = run_script(dirty, rules, config.clone());
        let stats = plain.memory_stats();
        assert_eq!(
            stats,
            mlnclean::MemoryStats::default(),
            "{label}: unbudgeted sessions must never touch the spill layer"
        );

        let (budgeted, model_b, session) =
            run_script(dirty, rules, config.clone().with_memory_budget(1));
        assert_eq!(model, model_b, "script must be deterministic");
        let stats = session.memory_stats();
        assert!(
            stats.spilled_blocks > 0,
            "{label} (parallel={parallel}): a 1-byte budget must spill \
             ({stats:?})"
        );
        assert!(
            stats.faulted_blocks > 0,
            "{label} (parallel={parallel}): the script's updates/deletes \
             must fault spilled blocks back in ({stats:?})"
        );
        assert!(
            stats.evicted_fusions > 0,
            "{label} (parallel={parallel}): a 1-byte budget must evict \
             fusion memos ({stats:?})"
        );
        assert!(stats.spilled_bytes > 0);
        assert_eq!(stats.spill_errors, 0);
        // Post-outcome enforcement evicts everything evictable under a
        // 1-byte budget — the estimate must land at zero.
        assert_eq!(session.resident_estimate(), 0);

        let mut net = Dataset::new(dirty.schema().clone());
        net.extend_rows(model).expect("model rows fit the schema");
        let batch = MlnClean::new(config)
            .clean(&net, rules)
            .expect("model batch cleans");

        let tag = format!("{label} (parallel={parallel})");
        assert_outcomes_identical(
            &format!("{tag}: budgeted vs unbudgeted"),
            &budgeted,
            &unbudgeted,
        );
        assert_outcomes_identical(&format!("{tag}: budgeted vs batch"), &budgeted, &batch);
    }
}

#[test]
fn hospital_budgeted_run_is_byte_identical() {
    let dirty = dataset::sample_hospital_dataset();
    let rules = rules::sample_hospital_rules();
    check_workload("hospital", &dirty, &rules, CleanConfig::default());
}

#[test]
fn seeded_hai_budgeted_run_is_byte_identical() {
    let dirty = datagen::HaiGenerator::default()
        .with_rows(240)
        .with_providers(12)
        .dirty(0.08, 0.5, 7)
        .dirty;
    let rules = datagen::HaiGenerator::rules();
    check_workload(
        "hai",
        &dirty,
        &rules,
        CleanConfig::default()
            .with_tau(2)
            .with_agp_distance_guard(0.15),
    );
}

#[test]
fn seeded_car_budgeted_run_is_byte_identical() {
    let dirty = datagen::CarGenerator::default()
        .with_rows(240)
        .dirty(0.08, 0.5, 11)
        .dirty;
    let rules = datagen::CarGenerator::rules();
    check_workload(
        "car",
        &dirty,
        &rules,
        CleanConfig::default()
            .with_tau(1)
            .with_agp_distance_guard(0.15),
    );
}

/// Suspend mid-stream (snapshot → codec bytes → resume in a fresh session)
/// and finish the stream: every outcome after the resume must be
/// byte-identical to the uninterrupted session's, batch ordinals must
/// continue, and the round trip must also hold under a budget.
#[test]
fn suspend_resume_mid_stream_is_byte_identical() {
    let dirty = datagen::HaiGenerator::default()
        .with_rows(200)
        .with_providers(10)
        .dirty(0.08, 0.5, 3)
        .dirty;
    let rules = datagen::HaiGenerator::rules();
    let rows: Vec<Vec<String>> = dirty.tuples().map(|t| t.owned_values()).collect();
    let (head, tail) = rows.split_at(rows.len() / 2);

    for (label, config) in [
        ("plain", CleanConfig::default().with_tau(2)),
        (
            "budgeted",
            CleanConfig::default().with_tau(2).with_memory_budget(1),
        ),
    ] {
        for parallel in [false, true] {
            let config = config.clone().with_parallel(parallel);
            let tag = format!("{label} (parallel={parallel})");

            // Uninterrupted reference.
            let mut uninterrupted =
                CleaningSession::new(config.clone(), dirty.schema().clone(), rules.clone())
                    .expect("rules match the schema");
            for chunk in head.chunks(16) {
                uninterrupted.ingest_batch(chunk.to_vec()).unwrap();
            }
            // Draw an outcome before the suspend point so the suspended
            // session carries non-trivial cleaned state the snapshot must
            // *not* need.
            let _ = uninterrupted.outcome();
            for chunk in tail.chunks(16) {
                uninterrupted.ingest_batch(chunk.to_vec()).unwrap();
            }
            let reference = uninterrupted.finish();

            // Interrupted twin: same prefix, then snapshot → bytes → resume.
            let mut suspended =
                CleaningSession::new(config.clone(), dirty.schema().clone(), rules.clone())
                    .expect("rules match the schema");
            for chunk in head.chunks(16) {
                suspended.ingest_batch(chunk.to_vec()).unwrap();
            }
            let _ = suspended.outcome();
            let batches_at_suspend = suspended.batches();
            let frame = mlnw::to_bytes(&suspended.snapshot()).expect("snapshot encodes");
            drop(suspended);

            let snapshot: SessionSnapshot = mlnw::from_bytes(&frame).expect("snapshot decodes");
            let mut resumed = CleaningSession::resume(config.clone(), rules.clone(), snapshot)
                .expect("snapshot resumes");
            assert_eq!(
                resumed.batches(),
                batches_at_suspend,
                "{tag}: batch ordinals must continue across the suspend"
            );
            assert_eq!(resumed.len(), head.len());
            for chunk in tail.chunks(16) {
                resumed.ingest_batch(chunk.to_vec()).unwrap();
            }
            let report = resumed.finish();
            assert_outcomes_identical(&tag, &report, &reference);
        }
    }
}

/// An empty session snapshots and resumes too (the degenerate checkpoint a
/// worker may take before its first batch).
#[test]
fn empty_snapshot_resumes() {
    let dirty = dataset::sample_hospital_dataset();
    let rules = rules::sample_hospital_rules();
    let session = CleaningSession::new(
        CleanConfig::default(),
        dirty.schema().clone(),
        rules.clone(),
    )
    .unwrap();
    let frame = mlnw::to_bytes(&session.snapshot()).unwrap();
    let snapshot: SessionSnapshot = mlnw::from_bytes(&frame).unwrap();
    let resumed = CleaningSession::resume(CleanConfig::default(), rules, snapshot).unwrap();
    assert!(resumed.is_empty());
    assert_eq!(resumed.batches(), 0);
}
