//! Integration tests for the distributed execution path: partition soundness,
//! consistency with the stand-alone pipeline, and scaling behaviour.

use datagen::{HaiGenerator, TpchGenerator};
use dataset::RepairEvaluation;
use distributed::{partition_dataset, DistributedMlnClean, PartitionConfig};
use mlnclean::{CleanConfig, MlnClean};

fn config() -> CleanConfig {
    CleanConfig::default()
        .with_tau(2)
        .with_agp_distance_guard(0.15)
}

#[test]
fn partitions_cover_the_dataset_without_overlap() {
    let dirty = TpchGenerator::default()
        .with_rows(1_000)
        .dirty(0.05, 0.5, 3);
    for parts in [2, 4, 8] {
        let partitioning = partition_dataset(&dirty.dirty, &PartitionConfig::new(parts, 7));
        let mut all: Vec<_> = partitioning.parts.iter().flatten().copied().collect();
        all.sort();
        all.dedup();
        assert_eq!(
            all.len(),
            dirty.dirty.len(),
            "{parts} parts must cover every tuple once"
        );
        assert!(
            partitioning.skew() < 2.0,
            "capacity bound keeps parts balanced"
        );
    }
}

#[test]
fn distributed_matches_standalone_quality() {
    let dirty = HaiGenerator::default()
        .with_rows(900)
        .with_providers(20)
        .dirty(0.05, 0.5, 17);
    let rules = HaiGenerator::rules();

    let standalone = MlnClean::new(config()).clean(&dirty.dirty, &rules).unwrap();
    let standalone_f1 = RepairEvaluation::evaluate(&dirty, &standalone.repaired).f1();

    let distributed = DistributedMlnClean::new(4, config())
        .clean(&dirty.dirty, &rules)
        .unwrap();
    let distributed_f1 = RepairEvaluation::evaluate(&dirty, &distributed.repaired).f1();

    assert!(
        (standalone_f1 - distributed_f1).abs() < 0.15,
        "stand-alone {standalone_f1:.3} vs distributed {distributed_f1:.3} should be comparable"
    );
    assert!(
        distributed_f1 > 0.6,
        "distributed cleaning must still repair most errors"
    );
}

#[test]
fn accuracy_is_stable_across_worker_counts() {
    // Table 6's observation: the worker count changes the runtime, not the
    // cleaning quality (beyond small fluctuations).
    let dirty = TpchGenerator::default()
        .with_rows(1_200)
        .with_customers(60)
        .dirty(0.05, 0.5, 23);
    let rules = TpchGenerator::rules();
    let mut f1s = Vec::new();
    for workers in [2usize, 4, 8] {
        let outcome = DistributedMlnClean::new(workers, config())
            .clean(&dirty.dirty, &rules)
            .unwrap();
        f1s.push(RepairEvaluation::evaluate(&dirty, &outcome.repaired).f1());
    }
    let max = f1s.iter().cloned().fold(f64::MIN, f64::max);
    let min = f1s.iter().cloned().fold(f64::MAX, f64::min);
    // More workers mean smaller partitions and hence slightly less local
    // evidence, so a modest fluctuation is expected — but not a collapse.
    assert!(
        max - min < 0.2,
        "F1 should only fluctuate mildly with worker count: {f1s:?}"
    );
    assert!(
        min > 0.4,
        "every worker count must still repair a meaningful share: {f1s:?}"
    );
}

#[test]
fn distributed_dedup_collapses_duplicates_globally() {
    // Exact duplicates may be scattered across partitions; the global
    // gather + dedup step must still collapse them.
    let mut clean = TpchGenerator::default()
        .with_rows(400)
        .with_customers(25)
        .generate();
    let copy_source: Vec<Vec<String>> = clean.tuples().take(40).map(|t| t.owned_values()).collect();
    for row in copy_source {
        clean.push_row(row).unwrap();
    }
    let rules = TpchGenerator::rules();
    let outcome = DistributedMlnClean::new(4, config())
        .clean(&clean, &rules)
        .unwrap();
    // Most duplicate pairs collapse; a few may escape when their two copies
    // land in different partitions and receive different (spurious) repairs.
    assert!(
        outcome.deduplicated().len() <= clean.len() - 20,
        "expected at least half of the 40 duplicates to collapse, got {} of {} rows",
        outcome.deduplicated().len(),
        clean.len()
    );
}
