//! Cross-crate integration tests: synthetic workload generation, error
//! injection, MLNClean cleaning, HoloClean-style baseline comparison, and the
//! CSV/rule-file workflow a downstream user follows.

use datagen::{CarGenerator, HaiGenerator};
use dataset::csv::{parse_csv, to_csv};
use dataset::RepairEvaluation;
use distributed::DistributedMlnClean;
use holoclean::{HoloClean, HoloCleanConfig};
use mlnclean::{CleanConfig, Engine, IncrementalMlnClean, MlnClean};
use rules::parse_rules;

fn hai_config() -> CleanConfig {
    CleanConfig::default()
        .with_tau(2)
        .with_agp_distance_guard(0.15)
}

fn car_config() -> CleanConfig {
    CleanConfig::default()
        .with_tau(1)
        .with_agp_distance_guard(0.15)
}

#[test]
fn hai_cleaning_recovers_most_errors() {
    let dirty = HaiGenerator::default().with_rows(800).dirty(0.05, 0.5, 42);
    let rules = HaiGenerator::rules();
    let outcome = MlnClean::new(hai_config())
        .clean(&dirty.dirty, &rules)
        .unwrap();
    let report = RepairEvaluation::evaluate(&dirty, &outcome.repaired);
    assert!(
        report.f1() > 0.7,
        "HAI F1 should be high on dense data: {report}"
    );
    assert!(report.precision() > 0.7, "{report}");
}

#[test]
fn mlnclean_compares_favourably_with_the_baseline() {
    // The paper's headline comparison (Figure 6) at 5% errors.  On the sparse
    // CAR workload MLNClean must clearly beat the HoloClean-style baseline
    // even though the baseline is handed the exact error locations.  On the
    // dense HAI workload the oracle detection gives the baseline an edge our
    // synthetic data cannot fully compensate (see EXPERIMENTS.md), so there
    // MLNClean only has to stay within a modest margin.
    let cases = [
        (
            "HAI",
            HaiGenerator::default().with_rows(800).dirty(0.05, 0.5, 7),
            HaiGenerator::rules(),
            hai_config(),
            0.10,
        ),
        (
            "CAR",
            CarGenerator::default().with_rows(800).dirty(0.05, 0.5, 7),
            CarGenerator::rules(),
            car_config(),
            -0.03,
        ),
    ];
    for (name, dirty, rules, config, allowed_gap) in cases {
        let ours = MlnClean::new(config).clean(&dirty.dirty, &rules).unwrap();
        let ours_f1 = RepairEvaluation::evaluate(&dirty, &ours.repaired).f1();

        let baseline = HoloClean::new(HoloCleanConfig::default()).repair(
            &dirty.dirty,
            &rules,
            &dirty.erroneous_cells(),
        );
        let baseline_f1 = RepairEvaluation::evaluate(&dirty, &baseline.repaired).f1();

        assert!(
            ours_f1 + allowed_gap >= baseline_f1,
            "{name}: MLNClean {ours_f1:.3} vs baseline {baseline_f1:.3} (allowed gap {allowed_gap})"
        );
    }
}

#[test]
fn accuracy_degrades_gracefully_with_error_rate() {
    // Figure 6 shape: accuracy decreases as the error percentage rises, but
    // the drop is gradual, not a collapse.
    let rules = HaiGenerator::rules();
    let gen = HaiGenerator::default().with_rows(800);
    let mut previous = f64::INFINITY;
    let mut f1_at_5 = 0.0;
    let mut f1_at_30 = 0.0;
    for (i, rate) in [0.05, 0.15, 0.30].into_iter().enumerate() {
        let dirty = gen.dirty(rate, 0.5, 21 + i as u64);
        let outcome = MlnClean::new(hai_config())
            .clean(&dirty.dirty, &rules)
            .unwrap();
        let f1 = RepairEvaluation::evaluate(&dirty, &outcome.repaired).f1();
        if i == 0 {
            f1_at_5 = f1;
        }
        f1_at_30 = f1;
        assert!(
            f1 <= previous + 0.1,
            "accuracy should not increase sharply with more errors"
        );
        previous = f1;
    }
    assert!(f1_at_5 > f1_at_30, "5% errors must be easier than 30%");
    assert!(
        f1_at_30 > 0.3,
        "even at 30% errors a meaningful share is repaired"
    );
}

#[test]
fn mlnclean_is_stable_across_error_type_ratios() {
    // Figure 7 shape: MLNClean's two-stage cleaning handles typos and
    // replacement errors alike, so F1 varies little with Rret.
    let rules = HaiGenerator::rules();
    let gen = HaiGenerator::default().with_rows(800);
    let mut f1s = Vec::new();
    for rret in [0.0, 0.5, 1.0] {
        let dirty = gen.dirty(0.05, rret, 33);
        let outcome = MlnClean::new(hai_config())
            .clean(&dirty.dirty, &rules)
            .unwrap();
        f1s.push(RepairEvaluation::evaluate(&dirty, &outcome.repaired).f1());
    }
    let max = f1s.iter().cloned().fold(f64::MIN, f64::max);
    let min = f1s.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max - min < 0.25,
        "MLNClean should be stable across Rret, got {f1s:?}"
    );
}

#[test]
fn csv_and_rule_file_workflow() {
    // The downstream-user path: CSV in, rules from text, CSV out.
    let csv = "\
city,state,zip
SEATTLE,WA,98101
SEATTLE,WA,98101
SEATTLE,XX,98101
PORTLAND,OR,97201
PORTLAND,OR,97201
";
    let dirty = parse_csv(csv).unwrap();
    let rules = parse_rules("FD: city -> state\nFD: zip -> city").unwrap();
    let outcome = MlnClean::new(CleanConfig::default().with_tau(1))
        .clean(&dirty, &rules)
        .unwrap();

    let state = dirty.schema().attr_id("state").unwrap();
    assert_eq!(outcome.repaired.value(dataset::TupleId(2), state), "WA");

    let round_trip = parse_csv(&to_csv(&outcome.repaired)).unwrap();
    assert_eq!(round_trip, outcome.repaired);
}

#[test]
fn every_engine_cleans_through_the_same_front_door() {
    // The unified Engine abstraction: batch, incremental and distributed
    // drivers run through one trait, return one Report shape, and reach
    // comparable quality on the same workload.
    let dirty = HaiGenerator::default()
        .with_rows(600)
        .with_providers(15)
        .dirty(0.05, 0.5, 42);
    let rules = HaiGenerator::rules();
    let engines: [&dyn Engine; 3] = [
        &MlnClean::new(hai_config()),
        &IncrementalMlnClean::new(hai_config()).with_batch_rows(97),
        &DistributedMlnClean::new(4, hai_config()),
    ];
    let mut f1s = Vec::new();
    for engine in engines {
        let report = engine.run(&dirty.dirty, &rules).unwrap();
        assert_eq!(
            report.repaired.len(),
            dirty.dirty.len(),
            "{}",
            engine.name()
        );
        assert!(report.timings.total() > std::time::Duration::ZERO);
        // Provenance is global-coordinate for every driver: one FSCR outcome
        // per input tuple.
        assert_eq!(report.fscr.outcomes.len(), dirty.dirty.len());
        match engine.name() {
            "distributed" => {
                assert!(report.index.is_none());
                assert!(report.partitions.is_some());
            }
            _ => {
                assert!(report.index.is_some());
                assert!(report.partitions.is_none());
            }
        }
        f1s.push(RepairEvaluation::evaluate(&dirty, &report.repaired).f1());
    }
    // Batch and incremental are byte-identical (pinned elsewhere); the
    // distributed plan reorders tuples into partitions, so it only has to be
    // comparable in quality.
    assert_eq!(f1s[0], f1s[1], "batch vs incremental F1");
    assert!(
        (f1s[0] - f1s[2]).abs() < 0.15,
        "single-node {:.3} vs distributed {:.3}",
        f1s[0],
        f1s[2]
    );
}

#[test]
fn cleaning_is_deterministic() {
    let dirty = CarGenerator::default().with_rows(500).dirty(0.05, 0.5, 9);
    let rules = CarGenerator::rules();
    let a = MlnClean::new(car_config())
        .clean(&dirty.dirty, &rules)
        .unwrap();
    let b = MlnClean::new(car_config())
        .clean(&dirty.dirty, &rules)
        .unwrap();
    assert_eq!(a.repaired, b.repaired);
    assert_eq!(a.deduplicated(), b.deduplicated());
}

#[test]
fn clean_input_passes_through_almost_untouched() {
    // Cleaning an already-clean dataset must not wreck it: no erroneous cells
    // exist, so precision of the (few, if any) rewrites is the only concern.
    let clean = HaiGenerator::default().with_rows(600).generate();
    let rules = HaiGenerator::rules();
    let outcome = MlnClean::new(hai_config()).clean(&clean, &rules).unwrap();
    let changed = outcome.repaired.diff_cells(&clean).len();
    let total = clean.cell_count();
    assert!(
        (changed as f64) / (total as f64) < 0.01,
        "cleaning clean data changed {changed}/{total} cells"
    );
}
