//! End-to-end equivalence of the interned (`ValueId`-threaded) pipeline with
//! the historical string pipeline.
//!
//! The golden files under `tests/golden/` were produced by the pre-interning
//! pipeline (owned `String`s end to end) on the seeded HAI and CAR workloads.
//! The interned pipeline must reproduce them byte for byte — same repairs,
//! same deduplicated output, same F1 — in both the serial and the parallel
//! Stage-I configuration.  This pins the representation change (value pool +
//! columnar cells) to pure-performance status: it must not move a single
//! cell.
//!
//! Regenerate the fixtures (only when an *intentional* behaviour change
//! lands) with:
//!
//! ```bash
//! cargo test --test interned_equivalence -- --ignored regenerate
//! ```

use dataset::{csv, DirtyDataset, RepairEvaluation};
use mlnclean::{CleanConfig, MlnClean};
use rules::RuleSet;
use std::path::PathBuf;

struct Case {
    name: &'static str,
    dirty: DirtyDataset,
    rules: RuleSet,
    config: CleanConfig,
}

/// The two single-node workloads of the paper at smoke scale, with the
/// per-dataset configs the bench harness uses (τ optimum + AGP merge guard).
fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "hai",
            dirty: datagen::HaiGenerator::default()
                .with_rows(400)
                .dirty(0.05, 0.5, 1),
            rules: datagen::HaiGenerator::rules(),
            config: CleanConfig::default()
                .with_tau(2)
                .with_agp_distance_guard(0.15),
        },
        Case {
            name: "car",
            dirty: datagen::CarGenerator::default()
                .with_rows(600)
                .dirty(0.05, 0.5, 1),
            rules: datagen::CarGenerator::rules(),
            config: CleanConfig::default()
                .with_tau(1)
                .with_agp_distance_guard(0.15),
        },
    ]
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Run one case and render its observable output: repaired CSV, deduplicated
/// CSV, and the cell-level evaluation line.
fn render(case: &Case, parallel: bool) -> (String, String, String) {
    let outcome = MlnClean::new(case.config.clone().with_parallel(parallel))
        .clean(&case.dirty.dirty, &case.rules)
        .expect("workload cleans");
    let report = RepairEvaluation::evaluate(&case.dirty, &outcome.repaired);
    let eval = format!(
        "precision={:.9} recall={:.9} f1={:.9} changed={}\n",
        report.precision(),
        report.recall(),
        report.f1(),
        outcome.fscr.changed_cell_count(),
    );
    (
        csv::to_csv(&outcome.repaired),
        csv::to_csv(outcome.deduplicated()),
        eval,
    )
}

#[test]
fn interned_pipeline_matches_string_pipeline_golden() {
    for case in cases() {
        let golden_repaired =
            std::fs::read_to_string(golden_dir().join(format!("{}_repaired.csv", case.name)))
                .expect("golden repaired fixture exists; regenerate with --ignored");
        let golden_dedup =
            std::fs::read_to_string(golden_dir().join(format!("{}_deduplicated.csv", case.name)))
                .expect("golden dedup fixture exists");
        let golden_eval =
            std::fs::read_to_string(golden_dir().join(format!("{}_eval.txt", case.name)))
                .expect("golden eval fixture exists");

        for parallel in [false, true] {
            let (repaired, dedup, eval) = render(&case, parallel);
            let mode = if parallel { "parallel" } else { "serial" };
            assert_eq!(
                repaired, golden_repaired,
                "{} ({mode}): repaired output diverged from the string pipeline",
                case.name
            );
            assert_eq!(
                dedup, golden_dedup,
                "{} ({mode}): deduplicated output diverged from the string pipeline",
                case.name
            );
            assert_eq!(
                eval, golden_eval,
                "{} ({mode}): evaluation diverged from the string pipeline",
                case.name
            );
        }
    }
}

/// Writes the fixtures from whatever pipeline is currently compiled in.  Run
/// only to re-baseline after an intentional behaviour change.
#[test]
#[ignore]
fn regenerate_golden_fixtures() {
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).unwrap();
    for case in cases() {
        let (repaired, dedup, eval) = render(&case, false);
        std::fs::write(dir.join(format!("{}_repaired.csv", case.name)), repaired).unwrap();
        std::fs::write(dir.join(format!("{}_deduplicated.csv", case.name)), dedup).unwrap();
        std::fs::write(dir.join(format!("{}_eval.txt", case.name)), eval).unwrap();
    }
}
