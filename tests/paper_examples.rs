//! Integration tests that walk through the paper's running example end to
//! end: Table 1 (the dirty sample), Table 3 (ground MLN rules), Figure 2 (the
//! MLN index), Figure 4 (the three clean data versions), Example 2 (the
//! reliability score in group G13), and Example 3 (the fusion of tuple t3).

use dataset::{sample_hospital_dataset, sample_hospital_truth, RepairEvaluation, TupleId};
use mln::ground_rules_for_dataset;
use mlnclean::{CleanConfig, MlnClean, MlnIndex};
use rules::{sample_hospital_rules, RuleId};

#[test]
fn table3_ground_mln_rules_of_r1() {
    let ds = sample_hospital_dataset();
    let rules = sample_hospital_rules();
    let grounded = ground_rules_for_dataset(&ds, &rules);
    let r1: Vec<String> = grounded
        .iter()
        .filter(|g| g.rule == RuleId(0))
        .map(|g| g.to_clause_string())
        .collect();
    assert_eq!(
        r1.len(),
        4,
        "Table 3 lists exactly four ground MLN rules for r1"
    );
    for expected in [
        "¬CT(\"DOTHAN\") ∨ ST(\"AL\")",
        "¬CT(\"DOTH\") ∨ ST(\"AL\")",
        "¬CT(\"BOAZ\") ∨ ST(\"AL\")",
        "¬CT(\"BOAZ\") ∨ ST(\"AK\")",
    ] {
        assert!(
            r1.contains(&expected.to_string()),
            "missing ground rule {expected}"
        );
    }
}

#[test]
fn figure2_mln_index_structure() {
    let index = MlnIndex::build(&sample_hospital_dataset(), &sample_hospital_rules()).unwrap();
    // Three blocks (one per rule) with 3, 3 and 2 groups respectively.
    let group_counts: Vec<usize> = index.blocks.iter().map(|b| b.group_count()).collect();
    assert_eq!(group_counts, vec![3, 3, 2]);

    // Block B1 groups by city; the BOAZ group holds t4, t5, t6.
    let boaz = index
        .group_by_key(RuleId(0), &["BOAZ"])
        .expect("BOAZ group exists");
    assert_eq!(boaz.all_tuples(), vec![TupleId(3), TupleId(4), TupleId(5)]);

    // Block B3 (the CFD) holds only the ELIZA tuples, split into the DOTHAN
    // and BOAZ reason groups of Figure 2.
    let b3 = index.block(RuleId(2));
    let keys: Vec<Vec<&str>> = b3
        .groups
        .iter()
        .map(|g| g.resolve_key(index.pool()))
        .collect();
    assert!(keys.contains(&vec!["ELIZA", "DOTHAN"]));
    assert!(keys.contains(&vec!["ELIZA", "BOAZ"]));
}

#[test]
fn full_pipeline_reproduces_the_running_example() {
    let dirty = sample_hospital_dataset();
    let rules = sample_hospital_rules();
    let outcome = MlnClean::new(CleanConfig::default().with_tau(1))
        .clean(&dirty, &rules)
        .expect("rules match the schema");

    // Example 2: the BOAZ group keeps {BOAZ, AL}; t4's state is repaired.
    let st = dirty.schema().attr_id("ST").unwrap();
    assert_eq!(outcome.repaired.value(TupleId(3), st), "AL");

    // Example 3: tuple t3 ends as {ELIZA, BOAZ, AL, 2567688400}.
    let schema = outcome.repaired.schema();
    let values: Vec<&str> = schema
        .attr_ids()
        .map(|a| outcome.repaired.value(TupleId(2), a))
        .collect();
    assert_eq!(values, vec!["ELIZA", "BOAZ", "AL", "2567688400"]);

    // The final output equals the ground truth and deduplicates to the two
    // real-world entities of the example (the ALABAMA hospital and ELIZA).
    assert_eq!(outcome.repaired, sample_hospital_truth());
    assert_eq!(outcome.deduplicated().len(), 2);
}

#[test]
fn figure4_clean_data_versions_after_stage_one() {
    // Figure 4: after AGP + RSC, version 1 maps t1–t3 to {DOTHAN, AL} and
    // t4–t6 to {BOAZ, AL}; version 3 maps t3–t6 to {ELIZA, BOAZ, 2567688400}.
    let dirty = sample_hospital_dataset();
    let rules = sample_hospital_rules();
    let outcome = MlnClean::new(CleanConfig::default().with_tau(1))
        .clean(&dirty, &rules)
        .expect("rules match the schema");

    let b1 = outcome.index().block(RuleId(0));
    assert_eq!(b1.group_count(), 2);
    for group in &b1.groups {
        assert!(group.is_clean());
        assert_eq!(
            group.gammas[0].resolve_result_values(outcome.index().pool()),
            vec!["AL"]
        );
    }

    let b3 = outcome.index().block(RuleId(2));
    assert_eq!(b3.group_count(), 1);
    let gamma = &b3.groups[0].gammas[0];
    assert_eq!(
        gamma.resolve_reason_values(outcome.index().pool()),
        vec!["ELIZA", "BOAZ"]
    );
    assert_eq!(
        gamma.resolve_result_values(outcome.index().pool()),
        vec!["2567688400"]
    );
    assert_eq!(gamma.support(), 4);
}

#[test]
fn running_example_scores_perfect_f1() {
    let clean = sample_hospital_truth();
    let dirty_data = sample_hospital_dataset();
    let errors: Vec<dataset::InjectedError> = dirty_data
        .diff_cells(&clean)
        .into_iter()
        .map(|cell| dataset::InjectedError {
            cell,
            error_type: dataset::ErrorType::Replacement,
            original: clean.cell(cell).to_string(),
            dirty: dirty_data.cell(cell).to_string(),
        })
        .collect();
    assert_eq!(errors.len(), 4, "Table 1 has four erroneous cells");
    let dirty = dataset::DirtyDataset {
        dirty: dirty_data,
        clean,
        errors,
    };

    let outcome = MlnClean::new(CleanConfig::default().with_tau(1))
        .clean(&dirty.dirty, &sample_hospital_rules())
        .expect("rules match the schema");
    let report = RepairEvaluation::evaluate(&dirty, &outcome.repaired);
    assert_eq!(report.f1(), 1.0, "{report}");
}
