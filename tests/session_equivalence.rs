//! Incremental-vs-batch equivalence: driving a `CleaningSession` through
//! micro-batches — and, since the typed-ingest redesign, through interleaved
//! `Insert`/`Update`/`Delete` mutations — must yield **byte-identical**
//! repaired/deduplicated CSV and identical AGP/RSC/FSCR provenance to one
//! `MlnClean::clean` batch run over the net surviving rows — in both the
//! serial and the parallel Stage-I configuration, and regardless of how
//! often intermediate outcomes are drawn.

use dataset::{csv, AttrId, Dataset, Schema, TupleId};
use mlnclean::{ChangeSet, CleanConfig, CleanError, CleaningSession, MlnClean, Mutation, Report};
use rules::RuleSet;

/// Byte-level comparison of two outcomes: output CSVs plus full provenance.
fn assert_outcomes_identical(label: &str, incremental: &Report, batch: &Report) {
    assert_eq!(
        csv::to_csv(&incremental.repaired),
        csv::to_csv(&batch.repaired),
        "{label}: repaired CSV diverged"
    );
    assert_eq!(
        csv::to_csv(incremental.deduplicated()),
        csv::to_csv(batch.deduplicated()),
        "{label}: deduplicated CSV diverged"
    );
    assert_eq!(
        incremental.agp, batch.agp,
        "{label}: AGP provenance diverged"
    );
    assert_eq!(
        incremental.rsc, batch.rsc,
        "{label}: RSC provenance diverged"
    );
    assert_eq!(
        incremental.fscr, batch.fscr,
        "{label}: FSCR provenance diverged"
    );
}

/// Ingest `ds` into a fresh session in micro-batches of `batch_rows`,
/// optionally drawing an intermediate outcome after every batch (which
/// exercises the re-clean + fusion-cache reuse paths), and return the final
/// outcome.
fn stream_clean(
    ds: &Dataset,
    rules: &RuleSet,
    config: CleanConfig,
    batch_rows: usize,
    outcome_per_batch: bool,
) -> Result<Report, CleanError> {
    let mut session = CleaningSession::new(config, ds.schema().clone(), rules.clone())?;
    for batch in datagen::BatchStream::new(ds, batch_rows) {
        let report = session.ingest_batch(batch).expect("rows match the schema");
        assert!(report.dirty_blocks <= report.total_blocks);
        assert!(report.touched_groups <= report.total_groups + report.rows);
        if outcome_per_batch {
            let _ = session.outcome();
        }
    }
    Ok(session.finish())
}

#[test]
fn hospital_sample_micro_batches_match_batch_run() {
    let dirty = dataset::sample_hospital_dataset();
    let rules = rules::sample_hospital_rules();
    for parallel in [false, true] {
        let config = CleanConfig::default().with_tau(1).with_parallel(parallel);
        let batch = MlnClean::new(config.clone()).clean(&dirty, &rules).unwrap();
        for batch_rows in [1, 2, 3, 4, 6] {
            for per_batch in [false, true] {
                let incremental =
                    stream_clean(&dirty, &rules, config.clone(), batch_rows, per_batch).unwrap();
                assert_outcomes_identical(
                    &format!(
                        "hospital (parallel={parallel}, batch={batch_rows}, per_batch={per_batch})"
                    ),
                    &incremental,
                    &batch,
                );
            }
        }
    }
}

#[test]
fn seeded_hai_micro_batches_match_batch_run() {
    let dirty = datagen::HaiGenerator::default()
        .with_rows(320)
        .with_providers(12)
        .dirty(0.06, 0.5, 13)
        .dirty;
    let rules = datagen::HaiGenerator::rules();
    for parallel in [false, true] {
        let config = CleanConfig::default()
            .with_tau(2)
            .with_agp_distance_guard(0.15)
            .with_parallel(parallel);
        let batch = MlnClean::new(config.clone()).clean(&dirty, &rules).unwrap();
        // Uneven micro-batches, with intermediate re-cleans so cached fusions
        // and cleaned blocks get reused and invalidated across batches.
        let incremental = stream_clean(&dirty, &rules, config.clone(), 47, true).unwrap();
        assert_outcomes_identical(&format!("hai (parallel={parallel})"), &incremental, &batch);
    }
}

#[test]
fn seeded_car_micro_batches_match_batch_run() {
    // CAR carries the CFD (`Make="acura"`), so some batches leave the CFD
    // block untouched — the partial-dirtiness path.
    let dirty = datagen::CarGenerator::default()
        .with_rows(400)
        .dirty(0.05, 0.5, 3)
        .dirty;
    let rules = datagen::CarGenerator::rules();
    let config = CleanConfig::default()
        .with_tau(1)
        .with_agp_distance_guard(0.15);
    let batch = MlnClean::new(config.clone()).clean(&dirty, &rules).unwrap();
    let incremental = stream_clean(&dirty, &rules, config, 61, true).unwrap();
    assert_outcomes_identical("car", &incremental, &batch);
}

#[test]
fn bulk_ingest_then_micro_batches_match_batch_run() {
    // The mixed path: one bulk `ingest_dataset` (the MlnClean special case)
    // followed by incremental tail batches.
    let dirty = datagen::HaiGenerator::default()
        .with_rows(260)
        .with_providers(10)
        .dirty(0.06, 0.5, 29)
        .dirty;
    let rules = datagen::HaiGenerator::rules();
    let config = CleanConfig::default().with_tau(2);

    let head_ids: Vec<TupleId> = (0..200).map(TupleId).collect();
    let head = dirty.project_rows(&head_ids);

    let mut session =
        CleaningSession::new(config.clone(), dirty.schema().clone(), rules.clone()).unwrap();
    session.ingest_dataset(&head).unwrap();
    let _ = session.outcome();
    let tail: Vec<Vec<String>> = (200..dirty.len())
        .map(|t| dirty.tuple(TupleId(t)).owned_values())
        .collect();
    let report = session.ingest_batch(tail).unwrap();
    assert_eq!(report.total_rows, dirty.len());
    let incremental = session.finish();

    let batch = MlnClean::new(config).clean(&dirty, &rules).unwrap();
    assert_outcomes_identical("bulk+tail", &incremental, &batch);
}

#[test]
fn dirty_block_tracking_skips_untouched_cfd_block() {
    // On CAR, a tail batch of non-acura rows must leave the CFD block clean:
    // dirty blocks < total blocks, while the output stays byte-identical to
    // a full batch run.
    let dirty = datagen::CarGenerator::default()
        .with_rows(400)
        .dirty(0.05, 0.5, 3)
        .dirty;
    let rules = datagen::CarGenerator::rules();
    let config = CleanConfig::default().with_tau(1);

    // Order-preserving split: head = everything except the last few
    // non-acura rows, tail = those rows.
    let (head, tail) = datagen::CarGenerator::non_acura_tail_split(&dirty, 10);
    assert!(
        !tail.is_empty(),
        "the CAR sample must contain non-acura rows"
    );

    let mut session =
        CleaningSession::new(config.clone(), dirty.schema().clone(), rules.clone()).unwrap();
    session.ingest_dataset(&dirty.project_rows(&head)).unwrap();
    let _ = session.outcome();
    assert_eq!(session.dirty_block_count(), 0);

    let tail_rows: Vec<Vec<String>> = tail
        .iter()
        .map(|&t| dirty.tuple(t).owned_values())
        .collect();
    let report = session.ingest_batch(tail_rows).unwrap();
    assert!(
        report.dirty_blocks < report.total_blocks,
        "the CFD block must stay clean: {report:?}"
    );
    assert_eq!(report.dirty_blocks, 1, "only the FD block is touched");

    // Still byte-identical to a batch run over head ++ tail.
    let reordered = dirty.project_rows(
        &head
            .iter()
            .chain(tail.iter())
            .copied()
            .collect::<Vec<TupleId>>(),
    );
    let batch = MlnClean::new(config).clean(&reordered, &rules).unwrap();
    assert_outcomes_identical("car tail", &session.finish(), &batch);
}

#[test]
fn session_rejects_bad_input() {
    let dirty = dataset::sample_hospital_dataset();
    let rules = rules::sample_hospital_rules();

    // Empty rule set.
    let err = CleaningSession::new(
        CleanConfig::default(),
        dirty.schema().clone(),
        RuleSet::default(),
    )
    .unwrap_err();
    assert_eq!(err, CleanError::NoRules);

    // Rule referencing an unknown attribute.
    let err = CleaningSession::new(
        CleanConfig::default(),
        dirty.schema().clone(),
        rules::parse_rules("FD: nope -> ST").unwrap(),
    )
    .unwrap_err();
    assert!(matches!(err, CleanError::Index(_)));

    // Arity mismatch is atomic: nothing is ingested.
    let mut session =
        CleaningSession::new(CleanConfig::default(), dirty.schema().clone(), rules).unwrap();
    let err = session
        .ingest_batch(vec![vec!["only-one-value".to_string()]])
        .unwrap_err();
    assert!(matches!(err, CleanError::Arity(_)));
    assert!(session.is_empty());
    assert_eq!(session.batches(), 0);
}

#[test]
fn change_set_validation_is_atomic() {
    let dirty = dataset::sample_hospital_dataset();
    let rules = rules::sample_hospital_rules();
    let mut session =
        CleaningSession::new(CleanConfig::default(), dirty.schema().clone(), rules).unwrap();
    let rows: Vec<Vec<String>> = dirty.tuples().map(|t| t.owned_values()).collect();
    session.ingest_batch(rows).unwrap();

    // A change set that starts valid but ends out of bounds must apply
    // nothing at all: tuple ids are tracked through the sequence, so after
    // one delete only 5 rows remain and `TupleId(5)` is out of range.
    let before = csv::to_csv(session.dataset());
    let st = dirty.schema().attr_id("ST").unwrap();
    let err = session
        .apply(
            ChangeSet::new()
                .update(TupleId(0), st, "AL")
                .delete(TupleId(0))
                .delete(TupleId(5)),
        )
        .unwrap_err();
    assert_eq!(
        err,
        CleanError::UnknownTuple {
            tuple: TupleId(5),
            rows: 5
        }
    );
    assert_eq!(csv::to_csv(session.dataset()), before, "nothing applied");

    // Unknown attributes are caught too.
    let err = session
        .apply(ChangeSet::new().update(TupleId(0), AttrId(99), "x"))
        .unwrap_err();
    assert!(matches!(err, CleanError::UnknownAttribute { .. }));

    // An insertion inside the set extends the addressable range.
    session
        .apply(
            ChangeSet::new()
                .insert_row(dirty.tuple(TupleId(0)).owned_values())
                .delete(TupleId(6)),
        )
        .unwrap();
    assert_eq!(session.len(), dirty.len());
}

/// Apply one mutation to the plain-row reference model, mirroring the
/// session's sequential semantics (deletes shift later ids down).
fn apply_to_model(model: &mut Vec<Vec<String>>, mutation: &Mutation) {
    match mutation {
        Mutation::Insert(rows) => model.extend(rows.iter().cloned()),
        Mutation::Update(t, a, v) => model[t.index()][a.index()] = v.clone(),
        Mutation::Delete(t) => {
            model.remove(t.index());
        }
    }
}

/// Batch-clean the model rows from scratch (fresh dataset, fresh pool) — the
/// ground truth every session state must match byte for byte.
fn batch_clean_model(
    schema: &Schema,
    model: &[Vec<String>],
    rules: &RuleSet,
    config: &CleanConfig,
) -> Report {
    let mut net = Dataset::new(schema.clone());
    net.extend_rows(model.to_vec()).expect("model rows fit");
    MlnClean::new(config.clone())
        .clean(&net, rules)
        .expect("model batch cleans")
}

#[test]
fn scripted_mutations_on_the_hospital_sample_match_batch_runs() {
    // A deterministic script exercising every mutation kind — including CFD
    // relevance flips, value healing, deletes at the front/middle, and
    // re-inserts — checked against a fresh batch clean after EVERY change
    // set, in serial and parallel mode.
    let dirty = dataset::sample_hospital_dataset();
    let rules = rules::sample_hospital_rules();
    let schema = dirty.schema().clone();
    let ct = schema.attr_id("CT").unwrap();
    let st = schema.attr_id("ST").unwrap();
    let hn = schema.attr_id("HN").unwrap();
    let all_rows: Vec<Vec<String>> = dirty.tuples().map(|t| t.owned_values()).collect();

    let scripts: Vec<ChangeSet> = vec![
        ChangeSet::inserting(all_rows.clone()),
        // Heal the t2 typo, break t1 instead.
        ChangeSet::new()
            .update(TupleId(1), ct, "DOTHAN")
            .update(TupleId(0), st, "AK"),
        // Drop the broken row, flip t3 out of the CFD block.
        ChangeSet::new()
            .delete(TupleId(0))
            .update(TupleId(1), hn, "ALABAMA"),
        // Mixed set: insert two rows back, delete one, update across the
        // shifted numbering (ids resolve sequentially).
        ChangeSet::new()
            .insert(vec![all_rows[0].clone(), all_rows[1].clone()])
            .delete(TupleId(2))
            .update(TupleId(4), ct, "BOAZ"),
        // Delete everything but two rows.
        ChangeSet::new()
            .delete(TupleId(0))
            .delete(TupleId(0))
            .delete(TupleId(1)),
    ];

    for parallel in [false, true] {
        let config = CleanConfig::default().with_tau(1).with_parallel(parallel);
        let mut session =
            CleaningSession::new(config.clone(), schema.clone(), rules.clone()).unwrap();
        let mut model: Vec<Vec<String>> = Vec::new();
        for (step, changes) in scripts.iter().enumerate() {
            for mutation in changes.iter() {
                apply_to_model(&mut model, mutation);
            }
            let report = session.apply(changes.clone()).unwrap();
            assert_eq!(report.total_rows, model.len(), "step {step} row count");
            let incremental = session.outcome();
            let batch = batch_clean_model(&schema, &model, &rules, &config);
            assert_outcomes_identical(
                &format!("hospital script step {step} (parallel={parallel})"),
                &incremental,
                &batch,
            );
        }
    }
}

/// Tiny deterministic RNG (SplitMix64) for the randomized mutation scripts.
struct ScriptRng(u64);

impl ScriptRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }
}

/// Generate and apply `rounds` random change sets against both the session
/// and the plain-row model, drawing an intermediate outcome after each round,
/// and return nothing — the caller compares the final states.
///
/// Inserts draw rows from `reserve`; updates draw values from the attribute's
/// domain in the combined workload (so repairs stay plausible); deletes pick
/// any live row.  Every change set mixes one to four mutations.
fn run_random_script(
    session: &mut CleaningSession,
    model: &mut Vec<Vec<String>>,
    reserve: &[Vec<String>],
    domains: &[Vec<String>],
    rounds: usize,
    outcome_per_round: bool,
    rng: &mut ScriptRng,
) {
    let mut reserve_at = 0usize;
    for _ in 0..rounds {
        let mut changes = ChangeSet::new();
        let mut rows = model.len();
        for _ in 0..(1 + rng.below(4)) {
            let pick = rng.below(10);
            if pick < 4 && reserve_at < reserve.len() {
                // Insert one to three reserve rows.
                let n = (1 + rng.below(3)).min(reserve.len() - reserve_at);
                let batch = reserve[reserve_at..reserve_at + n].to_vec();
                reserve_at += n;
                rows += n;
                changes = changes.insert(batch);
            } else if pick < 8 && rows > 0 {
                // Update a random live cell to a random in-domain value.
                let t = TupleId(rng.below(rows));
                let a = rng.below(domains.len());
                let v = domains[a][rng.below(domains[a].len())].clone();
                changes = changes.update(t, AttrId(a), v);
            } else if rows > 1 {
                // Delete a random live row.
                let t = TupleId(rng.below(rows));
                rows -= 1;
                changes = changes.delete(t);
            }
        }
        if changes.is_empty() {
            continue;
        }
        for mutation in changes.iter() {
            apply_to_model(model, mutation);
        }
        let report = session.apply(changes).expect("script mutations are valid");
        assert_eq!(report.total_rows, model.len());
        if outcome_per_round {
            let _ = session.outcome();
        }
    }
}

/// Shared body of the randomized interleaving tests: seed a workload, split
/// it into an initial bulk plus an insertion reserve, run a random script,
/// and require byte-identity with a fresh batch clean of the net rows.
#[allow(clippy::too_many_arguments)]
fn random_interleaving_case(
    dirty: &Dataset,
    rules: &RuleSet,
    config: &CleanConfig,
    base_rows: usize,
    rounds: usize,
    outcome_per_round: bool,
    seed: u64,
    label: &str,
) {
    let schema = dirty.schema().clone();
    let all: Vec<Vec<String>> = dirty.tuples().map(|t| t.owned_values()).collect();
    let (base, reserve) = all.split_at(base_rows.min(all.len()));
    let domains: Vec<Vec<String>> = schema
        .attr_ids()
        .map(|a| dirty.domain(a).into_iter().collect())
        .collect();

    let mut session = CleaningSession::new(config.clone(), schema.clone(), rules.clone()).unwrap();
    let mut model: Vec<Vec<String>> = base.to_vec();
    session.ingest_batch(base.to_vec()).unwrap();

    let mut rng = ScriptRng(seed);
    run_random_script(
        &mut session,
        &mut model,
        reserve,
        &domains,
        rounds,
        outcome_per_round,
        &mut rng,
    );

    let incremental = session.finish();
    let batch = batch_clean_model(&schema, &model, rules, config);
    assert_outcomes_identical(label, &incremental, &batch);
}

#[test]
fn random_interleavings_on_seeded_hai_match_batch_runs() {
    let dirty = datagen::HaiGenerator::default()
        .with_rows(260)
        .with_providers(10)
        .dirty(0.06, 0.5, 13)
        .dirty;
    let rules = datagen::HaiGenerator::rules();
    for parallel in [false, true] {
        let config = CleanConfig::default()
            .with_tau(2)
            .with_agp_distance_guard(0.15)
            .with_parallel(parallel);
        random_interleaving_case(
            &dirty,
            &rules,
            &config,
            200,
            8,
            true,
            0xA11CE,
            &format!("hai random interleaving (parallel={parallel})"),
        );
    }
}

#[test]
fn random_interleavings_on_seeded_car_match_batch_runs() {
    let dirty = datagen::CarGenerator::default()
        .with_rows(320)
        .dirty(0.05, 0.5, 3)
        .dirty;
    let rules = datagen::CarGenerator::rules();
    for parallel in [false, true] {
        let config = CleanConfig::default()
            .with_tau(1)
            .with_agp_distance_guard(0.15)
            .with_parallel(parallel);
        random_interleaving_case(
            &dirty,
            &rules,
            &config,
            260,
            8,
            true,
            0xCA55E77E,
            &format!("car random interleaving (parallel={parallel})"),
        );
    }
}

#[test]
fn mutations_on_non_cfd_rows_keep_the_cfd_block_clean() {
    // Updating and deleting non-acura CAR rows (on attributes the CFD cannot
    // see flips for) must leave the CFD block untouched: dirty blocks <
    // total blocks, while staying byte-identical to the batch run.
    let dirty = datagen::CarGenerator::default()
        .with_rows(320)
        .dirty(0.05, 0.5, 3)
        .dirty;
    let rules = datagen::CarGenerator::rules();
    let config = CleanConfig::default().with_tau(1);
    let (head, tail) = datagen::CarGenerator::non_acura_tail_split(&dirty, 8);
    assert!(!tail.is_empty());

    let mut session =
        CleaningSession::new(config.clone(), dirty.schema().clone(), rules.clone()).unwrap();
    let ordered: Vec<TupleId> = head.iter().chain(tail.iter()).copied().collect();
    session
        .ingest_dataset(&dirty.project_rows(&ordered))
        .unwrap();
    let _ = session.outcome();
    assert_eq!(session.dirty_block_count(), 0);

    // Delete one non-acura row and rewrite a (non-Make) cell of another.
    let model_attr = dirty.schema().attr_id("Model").unwrap();
    let victim = TupleId(ordered.len() - 1);
    let patched = TupleId(ordered.len() - 3);
    let new_value = dirty.value(tail[0], model_attr).to_string();
    let mut model: Vec<Vec<String>> = ordered
        .iter()
        .map(|&t| dirty.tuple(t).owned_values())
        .collect();
    let changes = ChangeSet::new()
        .delete(victim)
        .update(patched, model_attr, new_value);
    for mutation in changes.iter() {
        apply_to_model(&mut model, mutation);
    }
    let report = session.apply(changes).unwrap();
    assert!(
        report.dirty_blocks < report.total_blocks,
        "the CFD block must stay clean: {report:?}"
    );
    assert_eq!(report.deleted_rows, 1);
    assert_eq!(report.updated_cells, 1);

    let incremental = session.finish();
    let batch = batch_clean_model(dirty.schema(), &model, &rules, &config);
    assert_outcomes_identical("car mutation tail", &incremental, &batch);
}

#[test]
fn no_op_updates_count_nothing_and_dirty_nothing() {
    let dirty = dataset::sample_hospital_dataset();
    let rules = rules::sample_hospital_rules();
    let mut session =
        CleaningSession::new(CleanConfig::default(), dirty.schema().clone(), rules).unwrap();
    session
        .ingest_batch(dirty.tuples().map(|t| t.owned_values()).collect())
        .unwrap();
    let _ = session.outcome();
    assert_eq!(session.dirty_block_count(), 0);

    // Re-writing a cell to the value it already holds overwrites nothing.
    let ct = dirty.schema().attr_id("CT").unwrap();
    let current = dirty.value(TupleId(0), ct).to_string();
    let report = session
        .apply(ChangeSet::new().update(TupleId(0), ct, current))
        .unwrap();
    assert_eq!(report.updated_cells, 0);
    assert_eq!(report.dirty_blocks, 0);
    assert_eq!(session.dirty_block_count(), 0);
}

#[test]
fn outcome_on_an_empty_session_is_empty() {
    let dirty = dataset::sample_hospital_dataset();
    let rules = rules::sample_hospital_rules();
    let mut session =
        CleaningSession::new(CleanConfig::default(), dirty.schema().clone(), rules).unwrap();
    let outcome = session.outcome();
    assert!(outcome.repaired.is_empty());
    assert!(outcome.deduplicated().is_empty());
    assert!(outcome.agp.merges.is_empty());
    assert!(outcome.fscr.outcomes.is_empty());
}

#[test]
fn deleting_every_row_leaves_an_empty_but_consistent_session() {
    let dirty = dataset::sample_hospital_dataset();
    let rules = rules::sample_hospital_rules();
    let mut session =
        CleaningSession::new(CleanConfig::default(), dirty.schema().clone(), rules).unwrap();
    let rows: Vec<Vec<String>> = dirty.tuples().map(|t| t.owned_values()).collect();
    session.ingest_batch(rows.clone()).unwrap();
    let _ = session.outcome();
    // Delete front-first: every remaining row is always TupleId(0).
    let mut changes = ChangeSet::new();
    for _ in 0..dirty.len() {
        changes = changes.delete(TupleId(0));
    }
    let report = session.apply(changes).unwrap();
    assert_eq!(report.total_rows, 0);
    assert_eq!(report.deleted_rows, dirty.len());
    let outcome = session.outcome();
    assert!(outcome.repaired.is_empty());
    assert!(outcome.fscr.outcomes.is_empty());
    // And the session keeps working afterwards.
    session.ingest_batch(rows).unwrap();
    assert_eq!(session.finish().repaired.len(), dirty.len());
}

mod proptest_interleavings {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        // Random interleavings of insert/update/delete on a seeded HAI
        // workload are byte-identical to a batch clean of the net dataset,
        // serial and parallel.
        #[test]
        fn random_hai_interleavings_match_batch(seed in 0u64..10_000) {
            let dirty = datagen::HaiGenerator::default()
                .with_rows(150)
                .with_providers(8)
                .dirty(0.08, 0.5, 7)
                .dirty;
            let rules = datagen::HaiGenerator::rules();
            let parallel = seed % 2 == 0;
            let config = CleanConfig::default()
                .with_tau(2)
                .with_parallel(parallel);
            random_interleaving_case(
                &dirty,
                &rules,
                &config,
                110,
                6,
                seed % 3 == 0,
                seed,
                &format!("proptest hai seed={seed} parallel={parallel}"),
            );
        }

        // Same property on CAR, whose CFD makes block dirtiness partial.
        #[test]
        fn random_car_interleavings_match_batch(seed in 0u64..10_000) {
            let dirty = datagen::CarGenerator::default()
                .with_rows(160)
                .dirty(0.06, 0.5, 5)
                .dirty;
            let rules = datagen::CarGenerator::rules();
            let parallel = seed % 2 == 1;
            let config = CleanConfig::default()
                .with_tau(1)
                .with_parallel(parallel);
            random_interleaving_case(
                &dirty,
                &rules,
                &config,
                120,
                6,
                seed % 3 == 1,
                seed,
                &format!("proptest car seed={seed} parallel={parallel}"),
            );
        }
    }
}
