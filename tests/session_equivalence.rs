//! Incremental-vs-batch equivalence: cleaning N micro-batches through
//! `CleaningSession` must yield **byte-identical** repaired/deduplicated CSV
//! and identical AGP/RSC/FSCR provenance to one `MlnClean::clean` batch run
//! over the same rows — in both the serial and the parallel Stage-I
//! configuration, and regardless of how often intermediate outcomes are
//! drawn.

use dataset::{csv, Dataset, TupleId};
use mlnclean::{CleanConfig, CleaningError, CleaningOutcome, CleaningSession, MlnClean};
use rules::RuleSet;

/// Byte-level comparison of two outcomes: output CSVs plus full provenance.
fn assert_outcomes_identical(label: &str, incremental: &CleaningOutcome, batch: &CleaningOutcome) {
    assert_eq!(
        csv::to_csv(&incremental.repaired),
        csv::to_csv(&batch.repaired),
        "{label}: repaired CSV diverged"
    );
    assert_eq!(
        csv::to_csv(incremental.deduplicated()),
        csv::to_csv(batch.deduplicated()),
        "{label}: deduplicated CSV diverged"
    );
    assert_eq!(
        incremental.agp, batch.agp,
        "{label}: AGP provenance diverged"
    );
    assert_eq!(
        incremental.rsc, batch.rsc,
        "{label}: RSC provenance diverged"
    );
    assert_eq!(
        incremental.fscr, batch.fscr,
        "{label}: FSCR provenance diverged"
    );
}

/// Ingest `ds` into a fresh session in micro-batches of `batch_rows`,
/// optionally drawing an intermediate outcome after every batch (which
/// exercises the re-clean + fusion-cache reuse paths), and return the final
/// outcome.
fn stream_clean(
    ds: &Dataset,
    rules: &RuleSet,
    config: CleanConfig,
    batch_rows: usize,
    outcome_per_batch: bool,
) -> Result<CleaningOutcome, CleaningError> {
    let mut session = CleaningSession::new(config, ds.schema().clone(), rules.clone())?;
    for batch in datagen::BatchStream::new(ds, batch_rows) {
        let report = session.ingest_batch(batch).expect("rows match the schema");
        assert!(report.dirty_blocks <= report.total_blocks);
        assert!(report.touched_groups <= report.total_groups);
        if outcome_per_batch {
            let _ = session.outcome();
        }
    }
    Ok(session.finish())
}

#[test]
fn hospital_sample_micro_batches_match_batch_run() {
    let dirty = dataset::sample_hospital_dataset();
    let rules = rules::sample_hospital_rules();
    for parallel in [false, true] {
        let config = CleanConfig::default().with_tau(1).with_parallel(parallel);
        let batch = MlnClean::new(config.clone()).clean(&dirty, &rules).unwrap();
        for batch_rows in [1, 2, 3, 4, 6] {
            for per_batch in [false, true] {
                let incremental =
                    stream_clean(&dirty, &rules, config.clone(), batch_rows, per_batch).unwrap();
                assert_outcomes_identical(
                    &format!(
                        "hospital (parallel={parallel}, batch={batch_rows}, per_batch={per_batch})"
                    ),
                    &incremental,
                    &batch,
                );
            }
        }
    }
}

#[test]
fn seeded_hai_micro_batches_match_batch_run() {
    let dirty = datagen::HaiGenerator::default()
        .with_rows(320)
        .with_providers(12)
        .dirty(0.06, 0.5, 13)
        .dirty;
    let rules = datagen::HaiGenerator::rules();
    for parallel in [false, true] {
        let config = CleanConfig::default()
            .with_tau(2)
            .with_agp_distance_guard(0.15)
            .with_parallel(parallel);
        let batch = MlnClean::new(config.clone()).clean(&dirty, &rules).unwrap();
        // Uneven micro-batches, with intermediate re-cleans so cached fusions
        // and cleaned blocks get reused and invalidated across batches.
        let incremental = stream_clean(&dirty, &rules, config.clone(), 47, true).unwrap();
        assert_outcomes_identical(&format!("hai (parallel={parallel})"), &incremental, &batch);
    }
}

#[test]
fn seeded_car_micro_batches_match_batch_run() {
    // CAR carries the CFD (`Make="acura"`), so some batches leave the CFD
    // block untouched — the partial-dirtiness path.
    let dirty = datagen::CarGenerator::default()
        .with_rows(400)
        .dirty(0.05, 0.5, 3)
        .dirty;
    let rules = datagen::CarGenerator::rules();
    let config = CleanConfig::default()
        .with_tau(1)
        .with_agp_distance_guard(0.15);
    let batch = MlnClean::new(config.clone()).clean(&dirty, &rules).unwrap();
    let incremental = stream_clean(&dirty, &rules, config, 61, true).unwrap();
    assert_outcomes_identical("car", &incremental, &batch);
}

#[test]
fn bulk_ingest_then_micro_batches_match_batch_run() {
    // The mixed path: one bulk `ingest_dataset` (the MlnClean special case)
    // followed by incremental tail batches.
    let dirty = datagen::HaiGenerator::default()
        .with_rows(260)
        .with_providers(10)
        .dirty(0.06, 0.5, 29)
        .dirty;
    let rules = datagen::HaiGenerator::rules();
    let config = CleanConfig::default().with_tau(2);

    let head_ids: Vec<TupleId> = (0..200).map(TupleId).collect();
    let head = dirty.project_rows(&head_ids);

    let mut session =
        CleaningSession::new(config.clone(), dirty.schema().clone(), rules.clone()).unwrap();
    session.ingest_dataset(&head).unwrap();
    let _ = session.outcome();
    let tail: Vec<Vec<String>> = (200..dirty.len())
        .map(|t| dirty.tuple(TupleId(t)).owned_values())
        .collect();
    let report = session.ingest_batch(tail).unwrap();
    assert_eq!(report.total_rows, dirty.len());
    let incremental = session.finish();

    let batch = MlnClean::new(config).clean(&dirty, &rules).unwrap();
    assert_outcomes_identical("bulk+tail", &incremental, &batch);
}

#[test]
fn dirty_block_tracking_skips_untouched_cfd_block() {
    // On CAR, a tail batch of non-acura rows must leave the CFD block clean:
    // dirty blocks < total blocks, while the output stays byte-identical to
    // a full batch run.
    let dirty = datagen::CarGenerator::default()
        .with_rows(400)
        .dirty(0.05, 0.5, 3)
        .dirty;
    let rules = datagen::CarGenerator::rules();
    let config = CleanConfig::default().with_tau(1);

    // Order-preserving split: head = everything except the last few
    // non-acura rows, tail = those rows.
    let (head, tail) = datagen::CarGenerator::non_acura_tail_split(&dirty, 10);
    assert!(
        !tail.is_empty(),
        "the CAR sample must contain non-acura rows"
    );

    let mut session =
        CleaningSession::new(config.clone(), dirty.schema().clone(), rules.clone()).unwrap();
    session.ingest_dataset(&dirty.project_rows(&head)).unwrap();
    let _ = session.outcome();
    assert_eq!(session.dirty_block_count(), 0);

    let tail_rows: Vec<Vec<String>> = tail
        .iter()
        .map(|&t| dirty.tuple(t).owned_values())
        .collect();
    let report = session.ingest_batch(tail_rows).unwrap();
    assert!(
        report.dirty_blocks < report.total_blocks,
        "the CFD block must stay clean: {report:?}"
    );
    assert_eq!(report.dirty_blocks, 1, "only the FD block is touched");

    // Still byte-identical to a batch run over head ++ tail.
    let reordered = dirty.project_rows(
        &head
            .iter()
            .chain(tail.iter())
            .copied()
            .collect::<Vec<TupleId>>(),
    );
    let batch = MlnClean::new(config).clean(&reordered, &rules).unwrap();
    assert_outcomes_identical("car tail", &session.finish(), &batch);
}

#[test]
fn session_rejects_bad_input() {
    let dirty = dataset::sample_hospital_dataset();
    let rules = rules::sample_hospital_rules();

    // Empty rule set.
    let err = CleaningSession::new(
        CleanConfig::default(),
        dirty.schema().clone(),
        RuleSet::default(),
    )
    .unwrap_err();
    assert_eq!(err, CleaningError::NoRules);

    // Rule referencing an unknown attribute.
    let err = CleaningSession::new(
        CleanConfig::default(),
        dirty.schema().clone(),
        rules::parse_rules("FD: nope -> ST").unwrap(),
    )
    .unwrap_err();
    assert!(matches!(err, CleaningError::Index(_)));

    // Arity mismatch is atomic: nothing is ingested.
    let mut session =
        CleaningSession::new(CleanConfig::default(), dirty.schema().clone(), rules).unwrap();
    let err = session
        .ingest_batch(vec![vec!["only-one-value".to_string()]])
        .unwrap_err();
    assert!(matches!(err, mlnclean::IngestError::Arity(_)));
    assert!(session.is_empty());
    assert_eq!(session.batches(), 0);
}

#[test]
fn outcome_on_an_empty_session_is_empty() {
    let dirty = dataset::sample_hospital_dataset();
    let rules = rules::sample_hospital_rules();
    let mut session =
        CleaningSession::new(CleanConfig::default(), dirty.schema().clone(), rules).unwrap();
    let outcome = session.outcome();
    assert!(outcome.repaired.is_empty());
    assert!(outcome.deduplicated().is_empty());
    assert!(outcome.agp.merges.is_empty());
    assert!(outcome.fscr.outcomes.is_empty());
}
