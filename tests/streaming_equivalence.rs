//! Distributed-streaming differential harness: a
//! `DistributedStreamingSession` fed a typed `ChangeSet` stream must yield
//! **byte-identical** repaired/deduplicated CSV and identical AGP/RSC/FSCR
//! provenance to a single `CleaningSession` fed the same stream — across
//! partition counts (1/2/4), merge cadences (K ∈ {1, 3}), serial and
//! parallel Stage-I configurations, and all three fixture workloads
//! (hospital sample, seeded HAI, seeded CAR).  Since the single session is
//! itself pinned byte-identical to a batch run (`session_equivalence.rs`),
//! this transitively pins all three engines to each other.
//!
//! The harness also carries the remap-batching regression: a change set
//! with deletes — however they interleave with inserts and updates — costs
//! exactly one O(index) id-compaction pass, observed through the
//! `CleaningSession::remap_passes` counter hook.

use dataset::{csv, AttrId, Dataset, Schema, TupleId};
use distributed::{DistributedStreamingMlnClean, DistributedStreamingSession};
use mlnclean::{
    ChangeSet, CleanConfig, CleaningSession, Engine, IncrementalMlnClean, MlnClean, Report,
};
use rules::RuleSet;

/// Byte-level comparison of two outcomes: output CSVs plus full provenance.
fn assert_outcomes_identical(label: &str, streamed: &Report, single: &Report) {
    assert_eq!(
        csv::to_csv(&streamed.repaired),
        csv::to_csv(&single.repaired),
        "{label}: repaired CSV diverged"
    );
    assert_eq!(
        csv::to_csv(streamed.deduplicated()),
        csv::to_csv(single.deduplicated()),
        "{label}: deduplicated CSV diverged"
    );
    assert_eq!(streamed.agp, single.agp, "{label}: AGP provenance diverged");
    assert_eq!(streamed.rsc, single.rsc, "{label}: RSC provenance diverged");
    assert_eq!(
        streamed.fscr, single.fscr,
        "{label}: FSCR provenance diverged"
    );
}

/// Feed the same change sets to a fresh single session and a fresh
/// distributed streaming session, asserting per-batch report agreement (and
/// optionally full intermediate outcomes), then compare the final outcomes
/// byte for byte.
#[allow(clippy::too_many_arguments)]
fn differential_case(
    schema: &Schema,
    rules: &RuleSet,
    config: &CleanConfig,
    scripts: &[ChangeSet],
    partitions: usize,
    merge_every: usize,
    outcome_per_batch: bool,
    label: &str,
) {
    let mut single =
        CleaningSession::new(config.clone(), schema.clone(), rules.clone()).expect("valid rules");
    let mut streamed = DistributedStreamingSession::new(
        config.clone(),
        schema.clone(),
        rules.clone(),
        partitions,
        merge_every,
    )
    .expect("valid rules and partitions");

    for (step, changes) in scripts.iter().enumerate() {
        let a = single.apply(changes.clone()).expect("valid script");
        let b = streamed.apply(changes.clone()).expect("valid script");
        assert_eq!(a.total_rows, b.total_rows, "{label} step {step}: row count");
        assert_eq!(a.rows, b.rows, "{label} step {step}: inserted rows");
        assert_eq!(
            a.deleted_rows, b.deleted_rows,
            "{label} step {step}: deleted rows"
        );
        assert_eq!(
            a.updated_cells, b.updated_cells,
            "{label} step {step}: updated cells"
        );
        assert_eq!(
            streamed.partition_sizes().iter().sum::<usize>(),
            b.total_rows,
            "{label} step {step}: partitions must cover every row exactly once"
        );
        if outcome_per_batch {
            assert_outcomes_identical(
                &format!("{label} step {step}"),
                &streamed.outcome(),
                &single.outcome(),
            );
        }
    }

    let streamed = streamed.finish();
    let single = single.finish();
    assert_outcomes_identical(label, &streamed, &single);
    // The distributed report carries the partition extras in global
    // coordinates.
    let parts = streamed.partitions.expect("distributed report");
    assert_eq!(parts.parts.len(), partitions);
    assert_eq!(parts.sizes().iter().sum::<usize>(), streamed.repaired.len());
    for ids in &parts.parts {
        assert!(ids.iter().all(|t| t.index() < streamed.repaired.len()));
    }
}

/// Chunk a dataset's rows into per-batch insert change sets.
fn insert_stream(ds: &Dataset, batch_rows: usize) -> Vec<ChangeSet> {
    let mut out = Vec::new();
    let mut at = 0usize;
    while at < ds.len() {
        let upto = (at + batch_rows).min(ds.len());
        let rows: Vec<Vec<String>> = (at..upto)
            .map(|t| ds.tuple(TupleId(t)).owned_values())
            .collect();
        out.push(ChangeSet::inserting(rows));
        at = upto;
    }
    out
}

#[test]
fn hospital_scripted_mutation_streams_match_the_single_session() {
    // A deterministic script exercising every mutation kind — inserts that
    // hash across partitions, updates and deletes that must follow their
    // tuple's home partition through the shifting id space — checked with a
    // full differential outcome after EVERY change set.
    let dirty = dataset::sample_hospital_dataset();
    let rules = rules::sample_hospital_rules();
    let schema = dirty.schema().clone();
    let ct = schema.attr_id("CT").unwrap();
    let st = schema.attr_id("ST").unwrap();
    let hn = schema.attr_id("HN").unwrap();
    let all_rows: Vec<Vec<String>> = dirty.tuples().map(|t| t.owned_values()).collect();

    let scripts: Vec<ChangeSet> = vec![
        ChangeSet::inserting(all_rows.clone()),
        // Heal the t2 typo, break t1 instead.
        ChangeSet::new()
            .update(TupleId(1), ct, "DOTHAN")
            .update(TupleId(0), st, "AK"),
        // Drop the broken row, flip t3 out of the CFD block.
        ChangeSet::new()
            .delete(TupleId(0))
            .update(TupleId(1), hn, "ALABAMA"),
        // Mixed set: insert two rows back, delete one, update across the
        // shifted numbering (ids resolve sequentially).
        ChangeSet::new()
            .insert(vec![all_rows[0].clone(), all_rows[1].clone()])
            .delete(TupleId(2))
            .update(TupleId(4), ct, "BOAZ"),
        // Delete most rows in one interleaved retraction.
        ChangeSet::new()
            .delete(TupleId(0))
            .update(TupleId(0), st, "AL")
            .delete(TupleId(1))
            .delete(TupleId(2)),
    ];

    for parallel in [false, true] {
        let config = CleanConfig::default().with_tau(1).with_parallel(parallel);
        for partitions in [1usize, 2, 4] {
            for merge_every in [1usize, 3] {
                differential_case(
                    &schema,
                    &rules,
                    &config,
                    &scripts,
                    partitions,
                    merge_every,
                    true,
                    &format!(
                        "hospital script (parallel={parallel}, partitions={partitions}, \
                         K={merge_every})"
                    ),
                );
            }
        }
    }
}

#[test]
fn seeded_hai_insert_streams_match_the_single_session() {
    let dirty = datagen::HaiGenerator::default()
        .with_rows(240)
        .with_providers(10)
        .dirty(0.06, 0.5, 13)
        .dirty;
    let rules = datagen::HaiGenerator::rules();
    let scripts = insert_stream(&dirty, 37);
    for parallel in [false, true] {
        let config = CleanConfig::default()
            .with_tau(2)
            .with_agp_distance_guard(0.15)
            .with_parallel(parallel);
        for (partitions, merge_every) in [(2usize, 1usize), (4, 3)] {
            // Draw intermediate outcomes on the serial 2-partition case so
            // cached cleaned blocks and fusion memos get reused and
            // invalidated across merge rounds.
            let per_batch = !parallel && partitions == 2;
            differential_case(
                dirty.schema(),
                &rules,
                &config,
                &scripts,
                partitions,
                merge_every,
                per_batch,
                &format!(
                    "hai stream (parallel={parallel}, partitions={partitions}, K={merge_every})"
                ),
            );
        }
    }
}

/// Tiny deterministic RNG (SplitMix64) for the randomized mutation scripts.
struct ScriptRng(u64);

impl ScriptRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }
}

/// Generate `rounds` random change sets over a workload: an initial bulk
/// insert of `base_rows`, then sets mixing one to four mutations (inserts
/// drawn from the reserve, in-domain cell updates, deletes of live rows),
/// with sequential-id semantics tracked through each set.
fn random_scripts(dirty: &Dataset, base_rows: usize, rounds: usize, seed: u64) -> Vec<ChangeSet> {
    let all: Vec<Vec<String>> = dirty.tuples().map(|t| t.owned_values()).collect();
    let (base, reserve) = all.split_at(base_rows.min(all.len()));
    let domains: Vec<Vec<String>> = dirty
        .schema()
        .attr_ids()
        .map(|a| dirty.domain(a).into_iter().collect())
        .collect();
    let mut rng = ScriptRng(seed);
    let mut scripts = vec![ChangeSet::inserting(base.to_vec())];
    let mut rows = base.len();
    let mut reserve_at = 0usize;
    for _ in 0..rounds {
        let mut changes = ChangeSet::new();
        for _ in 0..(1 + rng.below(4)) {
            let pick = rng.below(10);
            if pick < 4 && reserve_at < reserve.len() {
                let n = (1 + rng.below(3)).min(reserve.len() - reserve_at);
                changes = changes.insert(reserve[reserve_at..reserve_at + n].to_vec());
                reserve_at += n;
                rows += n;
            } else if pick < 8 && rows > 0 {
                let t = TupleId(rng.below(rows));
                let a = rng.below(domains.len());
                let v = domains[a][rng.below(domains[a].len())].clone();
                changes = changes.update(t, AttrId(a), v);
            } else if rows > 1 {
                changes = changes.delete(TupleId(rng.below(rows)));
                rows -= 1;
            }
        }
        if !changes.is_empty() {
            scripts.push(changes);
        }
    }
    scripts
}

#[test]
fn seeded_car_random_mutation_streams_match_the_single_session() {
    // CAR carries the CFD (`Make="acura"`), so merge rounds see partial
    // dirtiness: some change sets leave the CFD block clean everywhere.
    let dirty = datagen::CarGenerator::default()
        .with_rows(260)
        .dirty(0.05, 0.5, 3)
        .dirty;
    let rules = datagen::CarGenerator::rules();
    let scripts = random_scripts(&dirty, 210, 8, 0xCA55E77E);
    for parallel in [false, true] {
        let config = CleanConfig::default()
            .with_tau(1)
            .with_agp_distance_guard(0.15)
            .with_parallel(parallel);
        for (partitions, merge_every) in [(2usize, 3usize), (4, 1)] {
            differential_case(
                dirty.schema(),
                &rules,
                &config,
                &scripts,
                partitions,
                merge_every,
                false,
                &format!(
                    "car random stream (parallel={parallel}, partitions={partitions}, \
                     K={merge_every})"
                ),
            );
        }
    }
}

#[test]
fn seeded_hai_random_mutation_streams_match_the_single_session() {
    let dirty = datagen::HaiGenerator::default()
        .with_rows(220)
        .with_providers(9)
        .dirty(0.06, 0.5, 29)
        .dirty;
    let rules = datagen::HaiGenerator::rules();
    let scripts = random_scripts(&dirty, 170, 8, 0xA11CE);
    let config = CleanConfig::default().with_tau(2);
    for (partitions, merge_every) in [(2usize, 1usize), (4, 3)] {
        differential_case(
            dirty.schema(),
            &rules,
            &config,
            &scripts,
            partitions,
            merge_every,
            partitions == 4,
            &format!("hai random stream (partitions={partitions}, K={merge_every})"),
        );
    }
}

#[test]
fn all_engines_agree_on_the_same_input() {
    // The full engine matrix through the one front door: batch, incremental
    // micro-batching, and distributed streaming produce byte-identical
    // repairs and provenance.
    let dirty = datagen::HaiGenerator::default()
        .with_rows(180)
        .with_providers(8)
        .dirty(0.08, 0.5, 7)
        .dirty;
    let rules = datagen::HaiGenerator::rules();
    let config = CleanConfig::default().with_tau(2);
    let engines: [&dyn Engine; 3] = [
        &MlnClean::new(config.clone()),
        &IncrementalMlnClean::new(config.clone()).with_batch_rows(41),
        &DistributedStreamingMlnClean::new(3, config.clone())
            .with_batch_rows(41)
            .with_merge_every(2),
    ];
    let reports: Vec<Report> = engines
        .iter()
        .map(|e| e.run(&dirty, &rules).expect("rules match the schema"))
        .collect();
    for report in &reports[1..] {
        assert_outcomes_identical("engine matrix", report, &reports[0]);
    }
    assert_eq!(engines[2].name(), "distributed-streaming");
    // Only the distributed driver reports partitions; its merge rounds are
    // accounted per round.
    assert!(reports[0].partitions.is_none());
    let streamed = reports[2].partitions.as_ref().expect("partition report");
    assert_eq!(streamed.parts.len(), 3);
    assert!(reports[2].timings.merge_rounds >= 1);
}

#[test]
fn bulk_retractions_pay_one_remap_pass_per_change_set() {
    // The remap-batching regression (counter hook): deletes interleaved
    // with inserts and updates in one change set must cost exactly one
    // O(index) id-compaction pass — and stay byte-identical to a batch run
    // over the net rows.
    let dirty = dataset::sample_hospital_dataset();
    let rules = rules::sample_hospital_rules();
    let config = CleanConfig::default().with_tau(1);
    let mut session =
        CleaningSession::new(config.clone(), dirty.schema().clone(), rules.clone()).unwrap();
    let rows: Vec<Vec<String>> = dirty.tuples().map(|t| t.owned_values()).collect();
    let st = dirty.schema().attr_id("ST").unwrap();

    session.ingest_batch(rows.clone()).unwrap();
    assert_eq!(session.remap_passes(), 0, "no deletes yet");

    // Deletes scattered through the set: delete, update, delete, insert,
    // delete — one pass, not three.
    let report = session
        .apply(
            ChangeSet::new()
                .delete(TupleId(0))
                .update(TupleId(0), st, "AL")
                .delete(TupleId(2))
                .insert_row(rows[0].clone())
                .delete(TupleId(1)),
        )
        .unwrap();
    assert_eq!(report.deleted_rows, 3);
    assert_eq!(session.remap_passes(), 1, "one pass for the whole set");

    // A delete-free change set pays none; a later retraction pays one more.
    session
        .apply(ChangeSet::new().update(TupleId(0), st, "AL"))
        .unwrap();
    assert_eq!(session.remap_passes(), 1);
    session
        .apply(ChangeSet::new().delete(TupleId(0)).delete(TupleId(1)))
        .unwrap();
    assert_eq!(session.remap_passes(), 2);

    // Net result still byte-identical to a batch clean of the survivors.
    let incremental = session.finish();
    let mut net = Dataset::new(dirty.schema().clone());
    // Reference model: replay the same mutations on plain rows.
    let mut model = rows.clone();
    model.remove(0); // delete t0
    model[0][st.index()] = "AL".to_string(); // update new t0
    model.remove(2); // delete t2
    model.push(rows[0].clone()); // insert
    model.remove(1); // delete t1
    model[0][st.index()] = "AL".to_string(); // second update
    model.remove(0); // final deletes
    model.remove(1);
    net.extend_rows(model).unwrap();
    let batch = MlnClean::new(config).clean(&net, &rules).unwrap();
    assert_outcomes_identical("remap batching", &incremental, &batch);
}

#[test]
fn touched_blocks_report_feeds_the_coordinator() {
    // `BatchReport::touched_blocks` — the per-block dirtiness feed the
    // streaming coordinator unions across partitions — must name exactly
    // the blocks a change set touched.
    let dirty = datagen::CarGenerator::default()
        .with_rows(200)
        .dirty(0.05, 0.5, 3)
        .dirty;
    let rules = datagen::CarGenerator::rules();
    let (head, tail) = datagen::CarGenerator::non_acura_tail_split(&dirty, 8);
    assert!(!tail.is_empty());
    let mut session = CleaningSession::new(
        CleanConfig::default().with_tau(1),
        dirty.schema().clone(),
        rules,
    )
    .unwrap();
    session.ingest_dataset(&dirty.project_rows(&head)).unwrap();
    let _ = session.outcome();

    // A non-acura tail touches the FD block but never the CFD block.
    let tail_rows: Vec<Vec<String>> = tail
        .iter()
        .map(|&t| dirty.tuple(t).owned_values())
        .collect();
    let report = session.ingest_batch(tail_rows).unwrap();
    assert!(!report.touched_blocks.is_empty());
    assert_eq!(report.touched_blocks.len(), report.dirty_blocks);
    assert!(
        !report.touched_blocks.contains(&0),
        "the CFD block (rule 0, `Make=\"acura\"`) must stay untouched: {:?}",
        report.touched_blocks
    );
    // A no-op change set touches nothing.
    let report = session.apply(ChangeSet::new()).unwrap();
    assert!(report.touched_blocks.is_empty());
}

mod proptest_streams {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        // Random mutation streams on seeded CAR: distributed streaming and
        // the single session agree byte for byte whatever the partition
        // count, cadence and parallelism.
        #[test]
        fn random_car_streams_match(seed in 0u64..10_000) {
            let dirty = datagen::CarGenerator::default()
                .with_rows(150)
                .dirty(0.06, 0.5, 5)
                .dirty;
            let rules = datagen::CarGenerator::rules();
            let scripts = random_scripts(&dirty, 110, 5, seed);
            let partitions = 1 + (seed as usize % 4);
            let merge_every = if seed % 2 == 0 { 1 } else { 3 };
            let config = CleanConfig::default()
                .with_tau(1)
                .with_parallel(seed % 3 == 0);
            differential_case(
                dirty.schema(),
                &rules,
                &config,
                &scripts,
                partitions,
                merge_every,
                seed % 3 == 1,
                &format!("proptest car stream seed={seed} partitions={partitions} K={merge_every}"),
            );
        }

        // Same property on seeded HAI.
        #[test]
        fn random_hai_streams_match(seed in 0u64..10_000) {
            let dirty = datagen::HaiGenerator::default()
                .with_rows(140)
                .with_providers(7)
                .dirty(0.08, 0.5, 11)
                .dirty;
            let rules = datagen::HaiGenerator::rules();
            let scripts = random_scripts(&dirty, 100, 5, seed);
            let partitions = 1 + (seed as usize % 4);
            let merge_every = if seed % 2 == 1 { 1 } else { 3 };
            let config = CleanConfig::default()
                .with_tau(2)
                .with_parallel(seed % 3 == 1);
            differential_case(
                dirty.schema(),
                &rules,
                &config,
                &scripts,
                partitions,
                merge_every,
                false,
                &format!("proptest hai stream seed={seed} partitions={partitions} K={merge_every}"),
            );
        }
    }
}
