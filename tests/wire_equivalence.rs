//! Wire-service differential harness: a [`transport::WireSession`] — the
//! streaming coordinator driving partition workers across the simulated
//! network — must yield **byte-identical** repaired/deduplicated CSV and
//! identical AGP/RSC/FSCR provenance to a single in-process
//! [`mlnclean::CleaningSession`] fed the same change stream, under *any*
//! seeded fault schedule: delay, reordering, duplication, loss, link
//! outages, and worker crashes recovered by change-log replay.
//!
//! Together with `streaming_equivalence.rs` (in-process distributed ≡
//! single session) and `session_equivalence.rs` (single session ≡ batch),
//! this transitively pins the wire service to every other engine.
//!
//! Coverage: a deterministic fault-class matrix (6 classes × partitions
//! 1/2/4 × K ∈ {1,3}) plus 100 proptest-randomized schedules — more than
//! 100 distinct schedules per CI run, every one checked byte for byte.

use dataset::{csv, AttrId, Dataset, Schema, TupleId};
use mlnclean::{ChangeSet, CleanConfig, CleaningSession, Report};
use rules::RuleSet;
use transport::{wire_session, FaultSchedule, LinkOutage, NetCounters, WorkerCrash, COORDINATOR};

/// Byte-level comparison of two outcomes: output CSVs plus full provenance.
fn assert_outcomes_identical(label: &str, wired: &Report, single: &Report) {
    assert_eq!(
        csv::to_csv(&wired.repaired),
        csv::to_csv(&single.repaired),
        "{label}: repaired CSV diverged"
    );
    assert_eq!(
        csv::to_csv(wired.deduplicated()),
        csv::to_csv(single.deduplicated()),
        "{label}: deduplicated CSV diverged"
    );
    assert_eq!(wired.agp, single.agp, "{label}: AGP provenance diverged");
    assert_eq!(wired.rsc, single.rsc, "{label}: RSC provenance diverged");
    assert_eq!(wired.fscr, single.fscr, "{label}: FSCR provenance diverged");
}

/// Transport-side evidence a differential run leaves behind.
struct WireStats {
    counters: NetCounters,
    restarts: usize,
}

/// Feed the same change sets to a fresh single session and a fresh wire
/// session under `schedule`, asserting per-batch report agreement and final
/// byte-identity.  Returns the transport tallies for fault-coverage
/// assertions.
#[allow(clippy::too_many_arguments)]
fn wire_case(
    schema: &Schema,
    rules: &RuleSet,
    config: &CleanConfig,
    scripts: &[ChangeSet],
    partitions: usize,
    merge_every: usize,
    schedule: FaultSchedule,
    label: &str,
) -> WireStats {
    let mut single =
        CleaningSession::new(config.clone(), schema.clone(), rules.clone()).expect("valid rules");
    let mut wired = wire_session(
        config.clone(),
        schema.clone(),
        rules.clone(),
        partitions,
        merge_every,
        schedule,
    )
    .expect("valid rules and partitions");

    for (step, changes) in scripts.iter().enumerate() {
        let a = single.apply(changes.clone()).expect("valid script");
        let b = wired.apply(changes.clone()).expect("valid script");
        assert_eq!(
            (a.total_rows, a.rows, a.deleted_rows, a.updated_cells),
            (b.total_rows, b.rows, b.deleted_rows, b.updated_cells),
            "{label} step {step}: batch reports diverged"
        );
    }

    let stats = WireStats {
        counters: wired.backend_mut().counters(),
        restarts: wired.backend_mut().total_restarts(),
    };
    let wired = wired.finish();
    let single = single.finish();
    assert_outcomes_identical(label, &wired, &single);
    stats
}

/// Hospital fixture stream: every mutation kind, ids resolved through the
/// shifting numbering.
fn hospital_scripts(schema: &Schema, dirty: &Dataset) -> Vec<ChangeSet> {
    let ct = schema.attr_id("CT").unwrap();
    let st = schema.attr_id("ST").unwrap();
    let rows: Vec<Vec<String>> = dirty.tuples().map(|t| t.owned_values()).collect();
    vec![
        ChangeSet::inserting(rows.clone()),
        ChangeSet::new()
            .update(TupleId(1), ct, "DOTHAN")
            .update(TupleId(0), st, "AK"),
        ChangeSet::new()
            .delete(TupleId(0))
            .insert(vec![rows[0].clone(), rows[1].clone()]),
        ChangeSet::new()
            .delete(TupleId(2))
            .update(TupleId(0), st, "AL")
            .delete(TupleId(1)),
    ]
}

/// Tiny deterministic RNG (SplitMix64) for the randomized mutation scripts.
struct ScriptRng(u64);

impl ScriptRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }
}

/// Random mutation stream over a workload: bulk insert of `base_rows`, then
/// `rounds` change sets mixing reserve inserts, in-domain updates and
/// deletes, with sequential-id semantics.
fn random_scripts(dirty: &Dataset, base_rows: usize, rounds: usize, seed: u64) -> Vec<ChangeSet> {
    let all: Vec<Vec<String>> = dirty.tuples().map(|t| t.owned_values()).collect();
    let (base, reserve) = all.split_at(base_rows.min(all.len()));
    let domains: Vec<Vec<String>> = dirty
        .schema()
        .attr_ids()
        .map(|a| dirty.domain(a).into_iter().collect())
        .collect();
    let mut rng = ScriptRng(seed);
    let mut scripts = vec![ChangeSet::inserting(base.to_vec())];
    let mut rows = base.len();
    let mut reserve_at = 0usize;
    for _ in 0..rounds {
        let mut changes = ChangeSet::new();
        for _ in 0..(1 + rng.below(4)) {
            let pick = rng.below(10);
            if pick < 4 && reserve_at < reserve.len() {
                let n = (1 + rng.below(3)).min(reserve.len() - reserve_at);
                changes = changes.insert(reserve[reserve_at..reserve_at + n].to_vec());
                reserve_at += n;
                rows += n;
            } else if pick < 8 && rows > 0 {
                let t = TupleId(rng.below(rows));
                let a = rng.below(domains.len());
                let v = domains[a][rng.below(domains[a].len())].clone();
                changes = changes.update(t, AttrId(a), v);
            } else if rows > 1 {
                changes = changes.delete(TupleId(rng.below(rows)));
                rows -= 1;
            }
        }
        if !changes.is_empty() {
            scripts.push(changes);
        }
    }
    scripts
}

/// The deterministic fault classes of the matrix test.
fn fault_classes() -> Vec<(&'static str, FaultSchedule)> {
    vec![
        ("clean", FaultSchedule::reliable()),
        (
            "delay",
            FaultSchedule {
                seed: 101,
                delay: (1, 12),
                ..FaultSchedule::reliable()
            },
        ),
        (
            "reorder",
            FaultSchedule {
                seed: 102,
                delay: (0, 6),
                reorder: 0.4,
                ..FaultSchedule::reliable()
            },
        ),
        (
            "duplicate",
            FaultSchedule {
                seed: 103,
                delay: (0, 3),
                duplicate: 0.4,
                ..FaultSchedule::reliable()
            },
        ),
        (
            "loss",
            FaultSchedule {
                seed: 104,
                delay: (0, 3),
                loss: 0.3,
                ..FaultSchedule::reliable()
            },
        ),
        (
            "mixed+outage",
            FaultSchedule {
                seed: 105,
                delay: (1, 8),
                reorder: 0.25,
                duplicate: 0.25,
                loss: 0.2,
                outages: vec![
                    LinkOutage {
                        a: COORDINATOR,
                        b: 1,
                        from: 5,
                        until: 60,
                    },
                    LinkOutage {
                        a: COORDINATOR,
                        b: 2,
                        from: 30,
                        until: 90,
                    },
                ],
                ..FaultSchedule::reliable()
            },
        ),
    ]
}

#[test]
fn reports_and_timings_round_trip_through_the_codec() {
    // The merge-round outcome message carries a full `Report` over the wire;
    // pin that the codec preserves it — output bytes, provenance, timings —
    // and that encoding is deterministic (re-encoding the decoded report
    // yields the same frame).
    let dirty = dataset::sample_hospital_dataset();
    let rules = rules::sample_hospital_rules();
    let report = mlnclean::MlnClean::new(CleanConfig::default().with_tau(1))
        .clean(&dirty, &rules)
        .expect("the sample cleans");

    let bytes = transport::to_bytes(&report).expect("reports encode");
    let back: Report = transport::from_bytes(&bytes).expect("reports decode");
    assert_outcomes_identical("codec round-trip", &back, &report);
    assert_eq!(back.timings, report.timings, "timings diverged");
    assert_eq!(
        transport::to_bytes(&back).expect("reports re-encode"),
        bytes,
        "re-encoding must be byte-stable"
    );

    let timings = report.timings;
    let frame = transport::to_bytes(&timings).expect("timings encode");
    assert_eq!(
        transport::from_bytes::<mlnclean::Timings>(&frame).expect("timings decode"),
        timings
    );
}

#[test]
fn fault_matrix_is_byte_identical_to_the_single_session() {
    let dirty = dataset::sample_hospital_dataset();
    let rules = rules::sample_hospital_rules();
    let schema = dirty.schema().clone();
    let scripts = hospital_scripts(&schema, &dirty);
    let config = CleanConfig::default().with_tau(1);

    let mut totals = NetCounters::default();
    for (class, schedule) in fault_classes() {
        for partitions in [1usize, 2, 4] {
            for merge_every in [1usize, 3] {
                let stats = wire_case(
                    &schema,
                    &rules,
                    &config,
                    &scripts,
                    partitions,
                    merge_every,
                    schedule.clone(),
                    &format!("hospital wire ({class}, partitions={partitions}, K={merge_every})"),
                );
                totals.sent += stats.counters.sent;
                totals.dropped += stats.counters.dropped;
                totals.duplicated += stats.counters.duplicated;
                totals.retransmits += stats.counters.retransmits;
            }
        }
    }
    // The matrix must actually have exercised the fault paths, not just
    // survived clean networks.
    assert!(totals.sent > 0);
    assert!(totals.dropped > 0, "no schedule ever dropped a datagram");
    assert!(totals.duplicated > 0, "no schedule ever duplicated");
    assert!(
        totals.retransmits > 0,
        "loss never forced the RPC layer to retransmit"
    );
}

#[test]
fn scheduled_crashes_replay_to_byte_identical_output() {
    // Chaos probe: workers are killed by the schedule mid-stream and
    // recover by replaying their durable change logs; the final output must
    // not move by a byte.
    let dirty = datagen::CarGenerator::default()
        .with_rows(120)
        .dirty(0.06, 0.5, 5)
        .dirty;
    let rules = datagen::CarGenerator::rules();
    let scripts = random_scripts(&dirty, 90, 5, 0xC4A5);
    let config = CleanConfig::default().with_tau(1);

    for (partitions, merge_every) in [(2usize, 1usize), (4, 3)] {
        let schedule = FaultSchedule {
            seed: 77,
            delay: (1, 6),
            reorder: 0.2,
            duplicate: 0.2,
            loss: 0.15,
            crashes: vec![
                WorkerCrash { at: 2, worker: 0 },
                WorkerCrash { at: 9, worker: 1 },
                WorkerCrash { at: 25, worker: 0 },
            ],
            ..FaultSchedule::reliable()
        };
        let stats = wire_case(
            dirty.schema(),
            &rules,
            &config,
            &scripts,
            partitions,
            merge_every,
            schedule,
            &format!("car chaos (partitions={partitions}, K={merge_every})"),
        );
        assert!(
            stats.restarts >= 3,
            "chaos schedule must actually kill workers (got {} restarts)",
            stats.restarts
        );
    }
}

#[test]
fn explicit_mid_stream_crash_replays_every_worker() {
    // Deterministic regression for the replay path: crash EVERY worker at a
    // fixed protocol point (between two applies), not a random tick.
    let dirty = dataset::sample_hospital_dataset();
    let rules = rules::sample_hospital_rules();
    let schema = dirty.schema().clone();
    let scripts = hospital_scripts(&schema, &dirty);
    let config = CleanConfig::default().with_tau(1);
    let partitions = 2usize;

    let mut single = CleaningSession::new(config.clone(), schema.clone(), rules.clone()).unwrap();
    let mut wired = wire_session(
        config.clone(),
        schema.clone(),
        rules.clone(),
        partitions,
        2,
        FaultSchedule {
            seed: 9,
            delay: (0, 4),
            duplicate: 0.3,
            ..FaultSchedule::reliable()
        },
    )
    .unwrap();

    for (step, changes) in scripts.iter().enumerate() {
        single.apply(changes.clone()).unwrap();
        wired.apply(changes.clone()).unwrap();
        if step == 1 {
            for worker in 0..partitions {
                wired.backend_mut().crash_worker(worker);
            }
        }
    }
    assert_eq!(wired.backend_mut().total_restarts(), partitions);
    assert_outcomes_identical("explicit crash", &wired.finish(), &single.finish());
}

#[test]
fn crash_after_checkpoint_recovers_from_snapshot_plus_tail() {
    // Deterministic regression for checkpoint-based recovery: mid-stream the
    // coordinator broadcasts a checkpoint (each worker snapshots its session
    // through the codec and truncates the covered journal prefix), more
    // batches land, then EVERY worker is killed — so recovery must resume
    // the snapshot and replay only the post-checkpoint tail.  The final
    // output must not move by a byte versus a single in-process session.
    let dirty = datagen::CarGenerator::default()
        .with_rows(100)
        .dirty(0.06, 0.5, 9)
        .dirty;
    let rules = datagen::CarGenerator::rules();
    let schema = dirty.schema().clone();
    let scripts = random_scripts(&dirty, 80, 6, 0xCE0C);
    let config = CleanConfig::default().with_tau(1);
    let partitions = 2usize;

    let mut single = CleaningSession::new(config.clone(), schema.clone(), rules.clone()).unwrap();
    let mut wired = wire_session(
        config.clone(),
        schema.clone(),
        rules.clone(),
        partitions,
        2,
        FaultSchedule {
            seed: 31,
            delay: (0, 4),
            duplicate: 0.3,
            loss: 0.1,
            ..FaultSchedule::reliable()
        },
    )
    .unwrap();

    let checkpoint_at = scripts.len() / 2;
    let crash_at = checkpoint_at + 1;
    for (step, changes) in scripts.iter().enumerate() {
        single.apply(changes.clone()).unwrap();
        wired.apply(changes.clone()).unwrap();
        if step == checkpoint_at {
            let journaled_before = wired.backend_mut().journaled_batches();
            let acks = wired.backend_mut().checkpoint_workers();
            assert_eq!(acks.len(), partitions);
            let covered: u64 = acks.iter().map(|&(batches, _)| batches).sum();
            assert!(covered > 0, "half the stream must have reached the workers");
            assert!(acks.iter().all(|&(_, bytes)| bytes > 0));
            assert_eq!(
                wired.backend_mut().journaled_batches(),
                0,
                "the checkpoint must truncate every covered journal entry \
                 (had {journaled_before})"
            );
        }
        if step == crash_at {
            assert!(
                wired.backend_mut().journaled_batches() > 0,
                "the post-checkpoint tail must be journaled"
            );
            for worker in 0..partitions {
                wired.backend_mut().crash_worker(worker);
            }
        }
    }
    assert_eq!(wired.backend_mut().total_restarts(), partitions);
    assert_outcomes_identical("crash after checkpoint", &wired.finish(), &single.finish());
}

mod proptest_schedules {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(100))]

        // 100 randomized fault schedules per run: seed-derived delay,
        // reorder, duplication, loss, outage windows and crash points,
        // across partitions 1/2/4 and K ∈ {1, 3} — every one byte-identical
        // to the single session.
        #[test]
        fn randomized_schedules_are_byte_identical(seed in 0u64..1_000_000) {
            let dirty = dataset::sample_hospital_dataset();
            let rules = rules::sample_hospital_rules();
            let schema = dirty.schema().clone();
            let scripts = hospital_scripts(&schema, &dirty);

            let mut mix = ScriptRng(seed);
            let partitions = [1usize, 2, 4][mix.below(3)];
            let merge_every = [1usize, 3][mix.below(2)];
            let schedule = FaultSchedule {
                seed,
                delay: (mix.below(3) as u64, 2 + mix.below(10) as u64),
                reorder: mix.below(5) as f64 / 10.0,
                duplicate: mix.below(5) as f64 / 10.0,
                loss: mix.below(4) as f64 / 10.0,
                outages: if mix.below(2) == 1 && partitions > 1 {
                    let from = mix.below(30) as u64;
                    vec![LinkOutage {
                        a: COORDINATOR,
                        b: 1 + mix.below(partitions),
                        from,
                        until: from + 10 + mix.below(50) as u64,
                    }]
                } else {
                    vec![]
                },
                crashes: if mix.below(3) == 0 {
                    vec![WorkerCrash {
                        at: 1 + mix.below(20) as u64,
                        worker: mix.below(partitions),
                    }]
                } else {
                    vec![]
                },
            };
            let config = CleanConfig::default().with_tau(1);
            wire_case(
                &schema,
                &rules,
                &config,
                &scripts,
                partitions,
                merge_every,
                schedule,
                &format!("proptest wire seed={seed} partitions={partitions} K={merge_every}"),
            );
        }
    }
}
