//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches use —
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, bench_with_input, finish}`, `BenchmarkId`, `Bencher::iter`
//! and the `criterion_group!`/`criterion_main!` macros — measuring wall-clock
//! time with `std::time::Instant` and printing a mean/min/max line per
//! benchmark.  No statistical analysis, plots, or HTML reports; swap in the
//! real criterion (Cargo.toml-only change) for those.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // One warm-up run, then `sample_size` timed runs.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        self.report(&id.to_string(), &bencher.samples);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        self.report(&id.to_string(), &bencher.samples);
        self
    }

    pub fn finish(&mut self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().expect("non-empty");
        let max = samples.iter().max().expect("non-empty");
        println!(
            "{}/{id}: mean {mean:?}, min {min:?}, max {max:?} ({} samples)",
            self.name,
            samples.len()
        );
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("", f);
        self
    }
}

/// Identity function that defeats constant propagation, mirroring
/// `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
