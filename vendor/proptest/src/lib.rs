//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate reimplements
//! the narrow slice of proptest the workspace's unit tests use:
//!
//! * the `proptest!` macro (with an optional `#![proptest_config(..)]`
//!   header) expanding each property into a `#[test]` that samples inputs
//!   from its strategies for `config.cases` iterations;
//! * `prop_assert!` / `prop_assert_eq!` (thin wrappers over `assert!`);
//! * range strategies over integers and floats, simple regex-style string
//!   strategies (`"[a-f]{0,12}"`, `"\\PC{0,16}"`), and
//!   `proptest::collection::vec`.
//!
//! Sampling is deterministic: the RNG is seeded from the test's module path
//! and name, so failures reproduce across runs and machines.  No shrinking is
//! performed — on failure the offending inputs are part of the assertion
//! message instead.

pub mod test_runner {
    /// Deterministic xoshiro256** RNG used to sample strategy values.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed deterministically from an arbitrary label (test name).
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label, then SplitMix64 expansion.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut sm = h;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform f64 in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform usize in [0, bound).
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "below: empty bound");
            (self.next_u64() % bound as u64) as usize
        }
    }

    /// Per-property configuration; mirrors `proptest::test_runner::ProptestConfig`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default is 256; 64 keeps single-core CI quick while
            // still exercising a meaningful sample.
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values; mirrors `proptest::strategy::Strategy`.
    pub trait Strategy {
        type Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// String strategies from a regex-ish pattern.  Supported forms are the
    /// ones used in this workspace: `\PC{m,n}` (any printable char) and
    /// `[class]{m,n}` where `class` is literal chars and `a-z` ranges.
    impl Strategy for &str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            sample_pattern(self, rng)
        }
    }

    fn parse_repeat(suffix: &str) -> (usize, usize) {
        let inner = suffix
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .unwrap_or_else(|| panic!("unsupported pattern repetition {suffix:?}"));
        match inner.split_once(',') {
            Some((lo, hi)) => (
                lo.parse().expect("repetition lower bound"),
                hi.parse().expect("repetition upper bound"),
            ),
            None => {
                let n = inner.parse().expect("repetition count");
                (n, n)
            }
        }
    }

    fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let (alphabet, rest): (Vec<char>, &str) = if let Some(rest) = pattern.strip_prefix("\\PC") {
            // Printable chars: ASCII graphic + space + a few multibyte ones
            // so Unicode-aware code paths get exercised.
            let mut chars: Vec<char> = (0x20u8..0x7f).map(|b| b as char).collect();
            chars.extend(['é', 'ß', 'λ', '中', '🦀']);
            (chars, rest)
        } else if let Some(rest) = pattern.strip_prefix('[') {
            let (class, rest) = rest
                .split_once(']')
                .unwrap_or_else(|| panic!("unterminated char class in {pattern:?}"));
            let mut chars = Vec::new();
            let cs: Vec<char> = class.chars().collect();
            let mut i = 0;
            while i < cs.len() {
                if i + 2 < cs.len() && cs[i + 1] == '-' {
                    let (lo, hi) = (cs[i], cs[i + 2]);
                    assert!(lo <= hi, "bad char range in {pattern:?}");
                    for c in lo..=hi {
                        chars.push(c);
                    }
                    i += 3;
                } else {
                    chars.push(cs[i]);
                    i += 1;
                }
            }
            (chars, rest)
        } else {
            panic!("unsupported string strategy pattern {pattern:?}");
        };
        let (lo, hi) = parse_repeat(rest);
        let len = lo + rng.below(hi - lo + 1);
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len())])
            .collect()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn char_class_pattern_stays_in_class() {
            let mut rng = TestRng::deterministic("class");
            for _ in 0..200 {
                let s = sample_pattern("[a-f]{0,12}", &mut rng);
                assert!(s.len() <= 12);
                assert!(s.chars().all(|c| ('a'..='f').contains(&c)), "{s:?}");
            }
        }

        #[test]
        fn printable_pattern_respects_length() {
            let mut rng = TestRng::deterministic("pc");
            for _ in 0..200 {
                let s = sample_pattern("\\PC{0,16}", &mut rng);
                assert!(s.chars().count() <= 16);
                assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
            }
        }

        #[test]
        fn mixed_class_with_two_ranges() {
            let mut rng = TestRng::deterministic("mix");
            for _ in 0..200 {
                let s = sample_pattern("[0-9a-z]{0,6}", &mut rng);
                assert!(s
                    .chars()
                    .all(|c| c.is_ascii_digit() || c.is_ascii_lowercase()));
            }
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::new_value(&self.len, rng);
            (0..len).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

/// Expand properties into `#[test]` functions that sample each strategy for
/// `config.cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    $( let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng); )+
                    let _ = __case;
                    $body
                }
            }
        )*
    };
}

/// `prop_assert!` — plain `assert!` (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` — plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` — plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}
