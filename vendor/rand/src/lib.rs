//! Offline stand-in for `rand` 0.8.
//!
//! The build environment cannot reach crates.io, so this crate implements the
//! slice of the `rand` API the workspace uses — `StdRng::seed_from_u64`,
//! `Rng::{gen, gen_bool, gen_range}`, and `SliceRandom::{choose, shuffle}` —
//! on top of xoshiro256** seeded via SplitMix64.  Every consumer seeds
//! explicitly, so determinism is identical in spirit to the real crate
//! (stream values differ, which is fine: nothing depends on rand's exact
//! stream, only on seeded reproducibility).

pub mod rngs {
    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    fn next_u64_impl(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Seedable generators (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f64::sample_standard(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f64::sample_standard(rng) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// The random-value trait, mirroring `rand::Rng`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Slice helpers, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    type Item;
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let idx = (rng.next_u64() % self.len() as u64) as usize;
            Some(&self[idx])
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        // Fisher–Yates.
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}

pub mod seq {
    pub use crate::SliceRandom;
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, SampleRange, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
            let n = rng.gen_range(1998..2020);
            assert!((1998..2020).contains(&n));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([1, 2, 3].choose(&mut rng).is_some());
    }
}
