//! Offline stand-in for `rayon`.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! data-parallel subset the workspace uses — `par_iter()` on slices,
//! `into_par_iter()` on `Vec`, with `map(..).collect()` (into `Vec`) and
//! `for_each` — backed by a work-stealing scheduler.  Semantics match rayon
//! where it matters here:
//!
//! * output order equals input order (batches carry their input offset and
//!   are reassembled by offset), so parallel and serial pipelines produce
//!   identical results;
//! * worker count defaults to `std::thread::available_parallelism`, is
//!   overridable with `RAYON_NUM_THREADS`, and collapses to a plain serial
//!   loop when 1 (no thread overhead on single-core machines);
//! * a panic in any closure propagates to the caller (first payload wins,
//!   remaining batches are abandoned).
//!
//! Scheduling: the input is pre-split into many small batches (several per
//! worker) and workers claim the next unclaimed batch through a shared
//! atomic cursor.  Unlike static equal-size chunking, a thread that finishes
//! its batch early immediately steals the next one, so skewed workloads
//! (one huge item among many tiny ones) no longer leave threads idle.
//! Helper threads come from a lazily started, process-wide reusable pool
//! rather than being spawned per call; the calling thread always
//! participates in the claim loop itself, so progress is guaranteed even
//! when the pool is saturated, and calls made *from* a pool worker fall
//! back to scoped helper threads to avoid deadlocking the pool on nested
//! parallelism.  Swapping in the real crate remains a Cargo.toml-only
//! change.

use std::cell::Cell;
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Number of worker threads: `RAYON_NUM_THREADS` if set and positive,
/// otherwise `available_parallelism`.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

// ---------------------------------------------------------------------------
// Reusable worker pool.
// ---------------------------------------------------------------------------

/// A queued unit of pool work.  Jobs are lifetime-erased closures; the
/// submitting call keeps every borrow alive until its completion latch
/// trips, which is what makes the erasure sound.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    workers: usize,
}

thread_local! {
    /// Set on pool worker threads so nested parallel calls can detect they
    /// must not wait on the pool they are running inside of.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

impl Pool {
    fn submit(&self, job: Job) {
        self.queue.lock().unwrap().push_back(job);
        self.available.notify_one();
    }
}

/// The process-wide pool, started on first parallel call.  Workers never
/// exit; an idle pool costs a few parked threads.
fn pool() -> &'static Pool {
    static POOL: OnceLock<&'static Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
            .max(2)
            - 1;
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            workers,
        }));
        for i in 0..workers {
            std::thread::Builder::new()
                .name(format!("rayon-worker-{i}"))
                .spawn(move || {
                    IN_POOL.with(|flag| flag.set(true));
                    loop {
                        let job = {
                            let mut queue = pool.queue.lock().unwrap();
                            loop {
                                if let Some(job) = queue.pop_front() {
                                    break job;
                                }
                                queue = pool.available.wait(queue).unwrap();
                            }
                        };
                        job();
                    }
                })
                .expect("spawn rayon pool worker");
        }
        pool
    })
}

/// Counts completed helper jobs so a caller can block until every helper it
/// submitted has finished (and thus no helper still borrows its stack).
struct Latch {
    done: Mutex<usize>,
    all_done: Condvar,
}

impl Latch {
    fn new() -> Self {
        Latch {
            done: Mutex::new(0),
            all_done: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut done = self.done.lock().unwrap();
        *done += 1;
        self.all_done.notify_all();
    }

    fn wait_for(&self, target: usize) {
        let mut done = self.done.lock().unwrap();
        while *done < target {
            done = self.all_done.wait(done).unwrap();
        }
    }
}

/// Trips the latch even if the guarded job unwinds.
struct LatchGuard<'a>(&'a Latch);

impl Drop for LatchGuard<'_> {
    fn drop(&mut self) {
        self.0.count_down();
    }
}

// ---------------------------------------------------------------------------
// Work-stealing driver.
// ---------------------------------------------------------------------------

fn run_chunked<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Pre-split into several batches per worker: small enough that a thread
    // stuck on an expensive batch strands little work, large enough that
    // claim overhead stays negligible.
    let batch_size = n.div_ceil(threads * 8).max(1);
    type BatchSlot<T> = Mutex<Option<(usize, Vec<T>)>>;
    let mut batches: Vec<BatchSlot<T>> = Vec::new();
    {
        let mut rest = items;
        let mut start = 0;
        while !rest.is_empty() {
            let tail = rest.split_off(rest.len().min(batch_size));
            let batch = std::mem::replace(&mut rest, tail);
            start += batch.len();
            let offset = start - batch.len();
            batches.push(Mutex::new(Some((offset, batch))));
        }
    }

    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let parts: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(batches.len()));

    // Every participating thread runs this loop: claim the next batch via
    // the shared cursor, map it, file the result under its input offset.
    let claim_loop = || {
        while !abort.load(Ordering::Relaxed) {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= batches.len() {
                break;
            }
            let Some((offset, batch)) = batches[i].lock().unwrap().take() else {
                continue;
            };
            let mapped = catch_unwind(AssertUnwindSafe(|| {
                batch.into_iter().map(&f).collect::<Vec<R>>()
            }));
            match mapped {
                Ok(part) => parts.lock().unwrap().push((offset, part)),
                Err(payload) => {
                    let mut slot = first_panic.lock().unwrap();
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                    abort.store(true, Ordering::Relaxed);
                }
            }
        }
    };

    if IN_POOL.with(|flag| flag.get()) {
        // Nested call from inside a pool worker: waiting on the pool could
        // deadlock (every worker might be the waiter), so fall back to
        // scoped helper threads running the same claim loop.
        std::thread::scope(|scope| {
            let handles: Vec<_> = (1..threads).map(|_| scope.spawn(claim_loop)).collect();
            claim_loop();
            for handle in handles {
                let _ = handle.join();
            }
        });
    } else {
        let pool = pool();
        let helpers = (threads - 1).min(pool.workers);
        let latch = Latch::new();
        for _ in 0..helpers {
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(|| {
                let _guard = LatchGuard(&latch);
                claim_loop();
            });
            // SAFETY: only the lifetime is erased.  The borrows inside the
            // job (the latch, the claim-loop state, `f`) live on this stack
            // frame, and `latch.wait_for(helpers)` below does not return
            // until every submitted job has run to completion (the latch is
            // tripped by a drop guard, so a panicking job still counts
            // down).  No job can outlive the frame it borrows from.
            let job: Job = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Box<dyn FnOnce() + Send>>(job)
            };
            pool.submit(job);
        }
        claim_loop();
        latch.wait_for(helpers);
    }

    if let Some(payload) = first_panic.into_inner().unwrap() {
        resume_unwind(payload);
    }
    let mut parts = parts.into_inner().unwrap();
    parts.sort_unstable_by_key(|(offset, _)| *offset);
    parts.into_iter().flat_map(|(_, part)| part).collect()
}

fn run_chunked_ref<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let refs: Vec<&'a T> = items.iter().collect();
    run_chunked(refs, f)
}

// ---------------------------------------------------------------------------
// Parallel-iterator façade.
// ---------------------------------------------------------------------------

/// A borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// An owning parallel iterator over a `Vec`.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

/// A mapped parallel iterator (borrowed source).
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

/// A mapped parallel iterator (owning source).
pub struct IntoParMap<T, F> {
    items: Vec<T>,
    f: F,
}

/// `par_iter()` on slices and anything that derefs to one.
pub trait ParallelSlice<T> {
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

/// `into_par_iter()` on owning collections.
pub trait IntoParallelIterator {
    type Item;
    fn into_par_iter(self) -> IntoParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        run_chunked_ref(self.items, f);
    }
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<'a, T, F> {
    pub fn collect(self) -> Vec<R> {
        run_chunked_ref(self.items, self.f)
    }
}

impl<T: Send> IntoParIter<T> {
    pub fn map<R, F>(self, f: F) -> IntoParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        IntoParMap {
            items: self.items,
            f,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
        T: Send,
    {
        run_chunked(self.items, f);
    }
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> IntoParMap<T, F> {
    pub fn collect(self) -> Vec<R> {
        run_chunked(self.items, self.f)
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use proptest::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let out = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_preserves_order() {
        let input: Vec<String> = (0..257).map(|i| format!("v{i}")).collect();
        let expect = input.clone();
        let out = input.into_par_iter().map(|s| s + "!").collect();
        assert_eq!(out, expect.into_iter().map(|s| s + "!").collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let input: Vec<u8> = Vec::new();
        let out: Vec<u8> = input.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn thread_override_is_respected() {
        // Just exercises the env path; correctness is order preservation.
        let input: Vec<usize> = (0..64).collect();
        let out = input.par_iter().map(|x| x + 1).collect();
        assert_eq!(out.len(), 64);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let input: Vec<usize> = (0..8).collect();
        input.par_iter().for_each(|x| {
            if *x == 7 {
                panic!("boom");
            }
        });
    }

    #[test]
    #[should_panic(expected = "late boom")]
    fn panic_in_a_late_batch_propagates() {
        // The panicking item sits in the last batch, after plenty of
        // successful ones, so the abort path runs with results in flight.
        let input: Vec<usize> = (0..4096).collect();
        input.par_iter().for_each(|x| {
            if *x == 4095 {
                panic!("late boom");
            }
        });
    }

    /// Burn CPU proportional to `cost` and return a value derived from it,
    /// so skewed inputs genuinely skew per-item runtime.
    fn spin(cost: usize) -> u64 {
        let mut acc = cost as u64;
        for i in 0..cost * 50 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
        }
        acc
    }

    #[test]
    fn skewed_costs_match_serial_byte_for_byte() {
        // One huge block followed by many tiny ones: the shape that static
        // equal-size chunking handled worst.
        let mut input = vec![20_000usize];
        input.extend(std::iter::repeat_n(3, 1500));
        let expect: Vec<u64> = input.iter().map(|c| spin(*c)).collect();
        let out = input.par_iter().map(|c| spin(*c)).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn pool_is_reusable_across_calls() {
        // Back-to-back parallel calls exercise pool reuse (the first call
        // starts the workers, later ones only enqueue jobs).
        for round in 0..32 {
            let input: Vec<usize> = (0..(round * 37 + 1)).collect();
            let expect: Vec<usize> = input.iter().map(|x| x + round).collect();
            let out = input.par_iter().map(|x| x + round).collect();
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn nested_parallelism_preserves_order() {
        // Outer par_iter over rows, inner par_iter per row: inner calls may
        // run on pool workers and must take the scoped fallback instead of
        // waiting on the pool they occupy.
        let rows: Vec<usize> = (0..24).collect();
        let out: Vec<Vec<usize>> = rows
            .par_iter()
            .map(|r| {
                let inner: Vec<usize> = (0..50).collect();
                inner.par_iter().map(|c| r * 100 + c).collect()
            })
            .collect();
        for (r, row) in out.iter().enumerate() {
            let expect: Vec<usize> = (0..50).map(|c| r * 100 + c).collect();
            assert_eq!(row, &expect);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn stealing_matches_serial_on_random_skew(
            costs in proptest::collection::vec(0usize..400, 0..80),
            huge in 2_000usize..20_000,
            huge_at in 0usize..80,
        ) {
            let mut input = costs;
            let at = huge_at.min(input.len());
            input.insert(at, huge);
            let expect: Vec<u64> = input.iter().map(|c| spin(*c)).collect();
            let out = input.par_iter().map(|c| spin(*c)).collect();
            prop_assert_eq!(out, expect);
        }
    }
}
