//! Offline stand-in for `rayon`.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! data-parallel subset the workspace uses — `par_iter()` on slices,
//! `into_par_iter()` on `Vec`, with `map(..).collect()` (into `Vec`) and
//! `for_each` — implemented with `std::thread::scope` over contiguous
//! chunks.  Semantics match rayon where it matters here:
//!
//! * output order equals input order (chunks are reassembled in sequence),
//!   so parallel and serial pipelines produce identical results;
//! * worker count defaults to `std::thread::available_parallelism`, is
//!   overridable with `RAYON_NUM_THREADS`, and collapses to a plain serial
//!   loop when 1 (no thread overhead on single-core machines);
//! * a panic in any closure propagates to the caller.
//!
//! There is no work stealing: each worker gets one contiguous chunk.  For the
//! block-shaped workloads in this repo (many similar-cost items) that is
//! within noise of real rayon, and swapping in the real crate is a
//! Cargo.toml-only change.

use std::num::NonZeroUsize;

/// Number of worker threads: `RAYON_NUM_THREADS` if set and positive,
/// otherwise `available_parallelism`.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// An owning parallel iterator over a `Vec`.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

/// A mapped parallel iterator (borrowed source).
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

/// A mapped parallel iterator (owning source).
pub struct IntoParMap<T, F> {
    items: Vec<T>,
    f: F,
}

/// `par_iter()` on slices and anything that derefs to one.
pub trait ParallelSlice<T> {
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

/// `into_par_iter()` on owning collections.
pub trait IntoParallelIterator {
    type Item;
    fn into_par_iter(self) -> IntoParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

fn run_chunked<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk_size));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let f = &f;
    let mut out: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(part) => out.push(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out.into_iter().flatten().collect()
}

fn run_chunked_ref<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let refs: Vec<&'a T> = items.iter().collect();
    run_chunked(refs, f)
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        run_chunked_ref(self.items, f);
    }
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<'a, T, F> {
    pub fn collect(self) -> Vec<R> {
        run_chunked_ref(self.items, self.f)
    }
}

impl<T: Send> IntoParIter<T> {
    pub fn map<R, F>(self, f: F) -> IntoParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        IntoParMap {
            items: self.items,
            f,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
        T: Send,
    {
        run_chunked(self.items, f);
    }
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> IntoParMap<T, F> {
    pub fn collect(self) -> Vec<R> {
        run_chunked(self.items, self.f)
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let out = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_preserves_order() {
        let input: Vec<String> = (0..257).map(|i| format!("v{i}")).collect();
        let expect = input.clone();
        let out = input.into_par_iter().map(|s| s + "!").collect();
        assert_eq!(out, expect.into_iter().map(|s| s + "!").collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let input: Vec<u8> = Vec::new();
        let out: Vec<u8> = input.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn thread_override_is_respected() {
        // Just exercises the env path; correctness is order preservation.
        let input: Vec<usize> = (0..64).collect();
        let out = input.par_iter().map(|x| x + 1).collect();
        assert_eq!(out.len(), 64);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let input: Vec<usize> = (0..8).collect();
        input.par_iter().for_each(|x| {
            if *x == 7 {
                panic!("boom");
            }
        });
    }
}
