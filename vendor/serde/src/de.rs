//! Deserialization half of the framework: [`Deserialize`], [`Deserializer`],
//! and the visitor machinery ([`Visitor`], [`SeqAccess`], [`MapAccess`],
//! [`EnumAccess`], [`VariantAccess`]).

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Error raised by a [`Deserializer`].
pub trait Error: Sized + std::error::Error {
    /// Build a deserializer error from a message.
    fn custom<T: Display>(msg: T) -> Self;

    /// A sequence or map had too few elements.
    fn invalid_length(len: usize, expected: &dyn Display) -> Self {
        Self::custom(format_args!("invalid length {len}, expected {expected}"))
    }

    /// A struct field was missing.
    fn missing_field(field: &'static str) -> Self {
        Self::custom(format_args!("missing field `{field}`"))
    }
}

/// A data structure that can be deserialized from any serde data format.
pub trait Deserialize<'de>: Sized {
    /// Deserialize a value with the given deserializer.
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>;
}

/// A value deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Stateful variant of [`Deserialize`]; `PhantomData<T>` is the stateless
/// seed used by the `next_element`-style convenience methods.
pub trait DeserializeSeed<'de>: Sized {
    /// The produced value.
    type Value;
    /// Deserialize the value.
    fn deserialize<D>(self, deserializer: D) -> Result<Self::Value, D::Error>
    where
        D: Deserializer<'de>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D>(self, deserializer: D) -> Result<T, D::Error>
    where
        D: Deserializer<'de>,
    {
        T::deserialize(deserializer)
    }
}

/// A data format that can deserialize any data structure supported by serde.
pub trait Deserializer<'de>: Sized {
    /// Error type on failure.
    type Error: Error;

    /// Deserialize whatever the input contains next (self-describing formats).
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `bool`.
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `i8`.
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `i16`.
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `i32`.
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `i64`.
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `u8`.
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `u16`.
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `u32`.
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `u64`.
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `f32`.
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `f64`.
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `char`.
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a string, visiting it as a borrowed `&str` if possible.
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an owned `String`.
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize raw bytes.
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an owned byte buffer.
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `Option`.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize `()`.
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a unit struct.
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize a newtype struct.
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize a variably-sized sequence.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a statically-sized tuple.
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize a tuple struct.
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize a map.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a struct with named fields.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize an enum.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize a struct-field or enum-variant identifier.
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize and discard whatever the input contains next.
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
}

/// Walks the values a [`Deserializer`] finds in its input.
///
/// Every `visit_*` method defaults to a type-mismatch error; formats call the
/// one matching what the input actually contains.
pub trait Visitor<'de>: Sized {
    /// The value built by this visitor.
    type Value;

    /// Describe what this visitor expects, for error messages.
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    /// Input contained a `bool`.
    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom("unexpected bool"))
    }
    /// Input contained an `i8`.
    fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Input contained an `i16`.
    fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Input contained an `i32`.
    fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Input contained an `i64`.
    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom("unexpected integer"))
    }
    /// Input contained a `u8`.
    fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Input contained a `u16`.
    fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Input contained a `u32`.
    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Input contained a `u64`.
    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom("unexpected unsigned integer"))
    }
    /// Input contained an `f32`.
    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        self.visit_f64(v as f64)
    }
    /// Input contained an `f64`.
    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom("unexpected float"))
    }
    /// Input contained a `char`.
    fn visit_char<E: Error>(self, v: char) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom("unexpected char"))
    }
    /// Input contained a string (borrowed from the deserializer's scratch).
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom("unexpected string"))
    }
    /// Input contained an owned string.
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }
    /// Input contained raw bytes.
    fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom("unexpected bytes"))
    }
    /// Input contained an owned byte buffer.
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }
    /// Input contained `None`.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected none"))
    }
    /// Input contained `Some(value)`.
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(D::Error::custom("unexpected some"))
    }
    /// Input contained a unit value.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected unit"))
    }
    /// Input contained a newtype struct wrapping one value.
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(D::Error::custom("unexpected newtype struct"))
    }
    /// Input contained a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        Err(A::Error::custom("unexpected sequence"))
    }
    /// Input contained a map.
    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        Err(A::Error::custom("unexpected map"))
    }
    /// Input contained an enum variant.
    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
        let _ = data;
        Err(A::Error::custom("unexpected enum"))
    }
}

/// Iterates the elements of a sequence during deserialization.
pub trait SeqAccess<'de> {
    /// Error type, matching the parent deserializer.
    type Error: Error;
    /// Deserialize the next element via a seed; `None` when exhausted.
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;
    /// Deserialize the next element; `None` when exhausted.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }
    /// Number of remaining elements, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Iterates the entries of a map during deserialization.
pub trait MapAccess<'de> {
    /// Error type, matching the parent deserializer.
    type Error: Error;
    /// Deserialize the next key via a seed; `None` when exhausted.
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;
    /// Deserialize the value matching the key just read.
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize the next key; `None` when exhausted.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }
    /// Deserialize the value matching the key just read.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }
    /// Deserialize the next entry; `None` when exhausted.
    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(key) => Ok(Some((key, self.next_value()?))),
            None => Ok(None),
        }
    }
    /// Number of remaining entries, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Provides the variant identifier of an enum being deserialized.
pub trait EnumAccess<'de>: Sized {
    /// Error type, matching the parent deserializer.
    type Error: Error;
    /// Access to the variant's payload, handed out alongside the identifier.
    type Variant: VariantAccess<'de, Error = Self::Error>;
    /// Deserialize the variant identifier via a seed.
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;
    /// Deserialize the variant identifier.
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Deserializes the payload of the enum variant identified by
/// [`EnumAccess::variant`].
pub trait VariantAccess<'de>: Sized {
    /// Error type, matching the parent deserializer.
    type Error: Error;
    /// The variant is a unit variant.
    fn unit_variant(self) -> Result<(), Self::Error>;
    /// The variant is a newtype variant; deserialize its payload via a seed.
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;
    /// The variant is a newtype variant; deserialize its payload.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }
    /// The variant is a tuple variant; deserialize its fields.
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// The variant is a struct variant; deserialize its fields.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types.
// ---------------------------------------------------------------------------

macro_rules! primitive_deserialize {
    ($($ty:ty, $doc:literal, $deserialize:ident, $($visit:ident: $arg:ty => $conv:expr,)*;)*) => {
        $(
            impl<'de> Deserialize<'de> for $ty {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    struct PrimitiveVisitor;
                    impl<'de> Visitor<'de> for PrimitiveVisitor {
                        type Value = $ty;
                        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                            f.write_str($doc)
                        }
                        $(
                            fn $visit<E: Error>(self, v: $arg) -> Result<$ty, E> {
                                ($conv)(v).ok_or_else(|| {
                                    E::custom(concat!("value out of range for ", $doc))
                                })
                            }
                        )*
                    }
                    deserializer.$deserialize(PrimitiveVisitor)
                }
            }
        )*
    };
}

primitive_deserialize! {
    bool, "a bool", deserialize_bool, visit_bool: bool => Some,;
    i8, "an i8", deserialize_i8,
        visit_i64: i64 => |v| i8::try_from(v).ok(),
        visit_u64: u64 => |v| i8::try_from(v).ok(),;
    i16, "an i16", deserialize_i16,
        visit_i64: i64 => |v| i16::try_from(v).ok(),
        visit_u64: u64 => |v| i16::try_from(v).ok(),;
    i32, "an i32", deserialize_i32,
        visit_i64: i64 => |v| i32::try_from(v).ok(),
        visit_u64: u64 => |v| i32::try_from(v).ok(),;
    i64, "an i64", deserialize_i64,
        visit_i64: i64 => Some,
        visit_u64: u64 => |v| i64::try_from(v).ok(),;
    isize, "an isize", deserialize_i64,
        visit_i64: i64 => |v| isize::try_from(v).ok(),
        visit_u64: u64 => |v| isize::try_from(v).ok(),;
    u8, "a u8", deserialize_u8,
        visit_u64: u64 => |v| u8::try_from(v).ok(),
        visit_i64: i64 => |v| u8::try_from(v).ok(),;
    u16, "a u16", deserialize_u16,
        visit_u64: u64 => |v| u16::try_from(v).ok(),
        visit_i64: i64 => |v| u16::try_from(v).ok(),;
    u32, "a u32", deserialize_u32,
        visit_u64: u64 => |v| u32::try_from(v).ok(),
        visit_i64: i64 => |v| u32::try_from(v).ok(),;
    u64, "a u64", deserialize_u64,
        visit_u64: u64 => Some,
        visit_i64: i64 => |v| u64::try_from(v).ok(),;
    usize, "a usize", deserialize_u64,
        visit_u64: u64 => |v| usize::try_from(v).ok(),
        visit_i64: i64 => |v| usize::try_from(v).ok(),;
    f32, "an f32", deserialize_f32,
        visit_f64: f64 => |v| Some(v as f32),;
    f64, "an f64", deserialize_f64,
        visit_f64: f64 => Some,;
    char, "a char", deserialize_char, visit_char: char => Some,;
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StringVisitor;
        impl<'de> Visitor<'de> for StringVisitor {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(StringVisitor)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UnitVisitor;
        impl<'de> Visitor<'de> for UnitVisitor {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(UnitVisitor)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct OptionVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an option")
            }
            fn visit_none<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Option<T>, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
            fn visit_unit<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
        }
        deserializer.deserialize_option(OptionVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct VecVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(VecVisitor(PhantomData))
    }
}

impl<'de, K, V, H> Deserialize<'de> for std::collections::HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V, H>(PhantomData<(K, V, H)>);
        impl<'de, K, V, H> Visitor<'de> for MapVisitor<K, V, H>
        where
            K: Deserialize<'de> + Eq + std::hash::Hash,
            V: Deserialize<'de>,
            H: std::hash::BuildHasher + Default,
        {
            type Value = std::collections::HashMap<K, V, H>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::HashMap::with_capacity_and_hasher(
                    map.size_hint().unwrap_or(0).min(4096),
                    H::default(),
                );
                while let Some((key, value)) = map.next_entry()? {
                    out.insert(key, value);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V>(PhantomData<(K, V)>);
        impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Visitor<'de> for MapVisitor<K, V> {
            type Value = std::collections::BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeMap::new();
                while let Some((key, value)) = map.next_entry()? {
                    out.insert(key, value);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

impl<'de, T, H> Deserialize<'de> for std::collections::HashSet<T, H>
where
    T: Deserialize<'de> + Eq + std::hash::Hash,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(Vec::<T>::deserialize(deserializer)?.into_iter().collect())
    }
}

impl<'de, T> Deserialize<'de> for std::collections::BTreeSet<T>
where
    T: Deserialize<'de> + Ord,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(Vec::<T>::deserialize(deserializer)?.into_iter().collect())
    }
}

macro_rules! tuple_deserialize {
    ($(($($name:ident),+) => $len:expr,)*) => {
        $(
            impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    struct TupleVisitor<$($name),+>(PhantomData<($($name,)+)>);
                    impl<'de, $($name: Deserialize<'de>),+> Visitor<'de>
                        for TupleVisitor<$($name),+>
                    {
                        type Value = ($($name,)+);
                        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                            f.write_str("a tuple")
                        }
                        #[allow(non_snake_case)]
                        fn visit_seq<AC: SeqAccess<'de>>(
                            self,
                            mut seq: AC,
                        ) -> Result<Self::Value, AC::Error> {
                            $(
                                let $name = seq
                                    .next_element()?
                                    .ok_or_else(|| AC::Error::custom("tuple too short"))?;
                            )+
                            Ok(($($name,)+))
                        }
                    }
                    deserializer.deserialize_tuple($len, TupleVisitor(PhantomData))
                }
            }
        )*
    };
}

tuple_deserialize! {
    (T0) => 1,
    (T0, T1) => 2,
    (T0, T1, T2) => 3,
    (T0, T1, T2, T3) => 4,
}

impl<'de> Deserialize<'de> for std::time::Duration {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let (secs, nanos) = <(u64, u32)>::deserialize(deserializer)?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::sync::Arc<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(std::sync::Arc::new)
    }
}

impl<'de> Deserialize<'de> for std::sync::Arc<str> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        String::deserialize(deserializer).map(std::sync::Arc::from)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::rc::Rc<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(std::rc::Rc::new)
    }
}
