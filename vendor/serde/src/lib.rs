//! Offline stand-in for `serde` — a real (if compact) serialization
//! framework, not a marker stub.
//!
//! This crate implements the subset of serde's data model that the
//! workspace's wire codec (`crates/transport`) and derives need:
//!
//! - [`Serialize`] / [`Serializer`] with the full compound-type surface
//!   (seq, tuple, tuple struct, map, struct, and all enum variant shapes);
//! - [`Deserialize`] / [`Deserializer`] with visitor-based dispatch
//!   ([`de::Visitor`], [`de::SeqAccess`], [`de::MapAccess`],
//!   [`de::EnumAccess`], [`de::VariantAccess`]);
//! - impls for the std types the workspace serializes: primitives,
//!   `String`, `Vec`, `Option`, tuples, `HashMap`/`BTreeMap`, `Duration`,
//!   `Arc`, `Box`.
//!
//! The trait names, method names, and signatures follow real serde, so
//! hand-written `Serialize`/`Deserialize`/`Serializer`/`Deserializer` impls
//! in the workspace stay source-compatible when the real crates are swapped
//! in (derive-generated code is regenerated on swap and thus free to use
//! stub-internal conventions).  Omissions versus real serde: borrowed
//! deserialization (`&'de str` etc.), `i128`/`u128`, zero-copy byte
//! visiting, and the `serde(...)` attribute vocabulary beyond
//! `#[serde(skip)]`.

// Macro-namespace exports: the derive macros (they share the trait names but
// live in the macro namespace, as in real serde).
pub use serde_derive::{Deserialize, Serialize};

pub mod de;
pub mod ser;

pub use de::Deserialize;
pub use de::Deserializer;
pub use ser::Serialize;
pub use ser::Serializer;
