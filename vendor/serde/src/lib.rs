//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names (empty marker traits)
//! and re-exports the no-op derive macros from the sibling `serde_derive`
//! stub, so `use serde::{Deserialize, Serialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged.  The workspace does
//! not serialize through serde yet; swapping in the real crate is a
//! Cargo.toml-only change.

// Macro-namespace exports: the derive macros.
pub use serde_derive::{Deserialize, Serialize};

mod traits {
    /// Marker trait matching `serde::Serialize`'s name.
    pub trait Serialize {}
    /// Marker trait matching `serde::Deserialize`'s name.
    pub trait Deserialize<'de> {}

    impl<T: ?Sized> Serialize for T {}
    impl<'de, T: ?Sized> Deserialize<'de> for T {}
}

// Type-namespace exports: the traits share the macro names, as in real serde.
pub use traits::Deserialize;
pub use traits::Serialize;
