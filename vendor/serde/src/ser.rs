//! Serialization half of the framework: [`Serialize`], [`Serializer`], and
//! the compound-type builder traits.

use std::fmt::Display;

/// Error raised by a [`Serializer`].
///
/// Mirrors `serde::ser::Error`: the one required constructor builds an error
/// from any displayable message.
pub trait Error: Sized + std::error::Error {
    /// Build a serializer error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized into any serde data format.
pub trait Serialize {
    /// Serialize `self` with the given serializer.
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer;
}

/// A data format that can serialize any data structure supported by serde.
///
/// The method set is the full serde v1 surface minus `i128`/`u128` and the
/// `collect_*` conveniences.
pub trait Serializer: Sized {
    /// Output produced by a successful serialization.
    type Ok;
    /// Error type on failure.
    type Error: Error;

    /// Builder returned by [`Serializer::serialize_seq`].
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Builder returned by [`Serializer::serialize_tuple`].
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Builder returned by [`Serializer::serialize_tuple_struct`].
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Builder returned by [`Serializer::serialize_tuple_variant`].
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Builder returned by [`Serializer::serialize_map`].
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Builder returned by [`Serializer::serialize_struct`].
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Builder returned by [`Serializer::serialize_struct_variant`].
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serialize a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `char`.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serialize a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serialize raw bytes.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serialize `Option::None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize `Option::Some(value)`.
    fn serialize_some<T>(self, value: &T) -> Result<Self::Ok, Self::Error>
    where
        T: Serialize + ?Sized;
    /// Serialize `()`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit struct such as `struct Marker;`.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit enum variant such as `E::A`.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a newtype struct such as `struct Id(u32);`.
    fn serialize_newtype_struct<T>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>
    where
        T: Serialize + ?Sized;
    /// Serialize a newtype enum variant such as `E::N(u32)`.
    fn serialize_newtype_variant<T>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>
    where
        T: Serialize + ?Sized;
    /// Begin serializing a variably-sized sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begin serializing a statically-sized tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begin serializing a tuple struct such as `struct Rgb(u8, u8, u8);`.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begin serializing a tuple enum variant such as `E::T(u8, u8)`.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begin serializing a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begin serializing a struct with named fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begin serializing a struct enum variant such as `E::S { a: u8 }`.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

/// Builder for sequence serialization.
pub trait SerializeSeq {
    /// Output type, matching the parent serializer.
    type Ok;
    /// Error type, matching the parent serializer.
    type Error: Error;
    /// Serialize one element.
    fn serialize_element<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    /// Finish the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Builder for tuple serialization.
pub trait SerializeTuple {
    /// Output type, matching the parent serializer.
    type Ok;
    /// Error type, matching the parent serializer.
    type Error: Error;
    /// Serialize one element.
    fn serialize_element<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    /// Finish the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Builder for tuple-struct serialization.
pub trait SerializeTupleStruct {
    /// Output type, matching the parent serializer.
    type Ok;
    /// Error type, matching the parent serializer.
    type Error: Error;
    /// Serialize one field.
    fn serialize_field<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    /// Finish the tuple struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Builder for tuple-variant serialization.
pub trait SerializeTupleVariant {
    /// Output type, matching the parent serializer.
    type Ok;
    /// Error type, matching the parent serializer.
    type Error: Error;
    /// Serialize one field.
    fn serialize_field<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    /// Finish the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Builder for map serialization.
pub trait SerializeMap {
    /// Output type, matching the parent serializer.
    type Ok;
    /// Error type, matching the parent serializer.
    type Error: Error;
    /// Serialize one key.
    fn serialize_key<T>(&mut self, key: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    /// Serialize one value (must follow the matching key).
    fn serialize_value<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    /// Serialize one entry (key then value).
    fn serialize_entry<K, V>(&mut self, key: &K, value: &V) -> Result<(), Self::Error>
    where
        K: Serialize + ?Sized,
        V: Serialize + ?Sized,
    {
        self.serialize_key(key)?;
        self.serialize_value(value)
    }
    /// Finish the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Builder for struct serialization.
pub trait SerializeStruct {
    /// Output type, matching the parent serializer.
    type Ok;
    /// Error type, matching the parent serializer.
    type Error: Error;
    /// Serialize one named field.
    fn serialize_field<T>(&mut self, key: &'static str, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    /// Finish the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Builder for struct-variant serialization.
pub trait SerializeStructVariant {
    /// Output type, matching the parent serializer.
    type Ok;
    /// Error type, matching the parent serializer.
    type Error: Error;
    /// Serialize one named field.
    fn serialize_field<T>(&mut self, key: &'static str, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    /// Finish the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types.
// ---------------------------------------------------------------------------

macro_rules! primitive_serialize {
    ($($ty:ty => $method:ident,)*) => {
        $(
            impl Serialize for $ty {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    serializer.$method(*self)
                }
            }
        )*
    };
}

primitive_serialize! {
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(value) => serializer.serialize_some(value),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (key, value) in self {
            map.serialize_entry(key, value)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (key, value) in self {
            map.serialize_entry(key, value)?;
        }
        map.end()
    }
}

impl<T: Serialize, H> Serialize for std::collections::HashSet<T, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

macro_rules! tuple_serialize {
    ($(($($name:ident $idx:tt),+) => $len:expr,)*) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    let mut tup = serializer.serialize_tuple($len)?;
                    $(tup.serialize_element(&self.$idx)?;)+
                    tup.end()
                }
            }
        )*
    };
}

tuple_serialize! {
    (T0 0) => 1,
    (T0 0, T1 1) => 2,
    (T0 0, T1 1, T2 2) => 3,
    (T0 0, T1 1, T2 2, T3 3) => 4,
}

impl Serialize for std::time::Duration {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tup = serializer.serialize_tuple(2)?;
        tup.serialize_element(&self.as_secs())?;
        tup.serialize_element(&self.subsec_nanos())?;
        tup.end()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}
