//! Offline stand-in for `serde_derive`.
//!
//! The real crates.io registry is unreachable in this build environment, so
//! this proc-macro crate accepts the `#[derive(Serialize, Deserialize)]`
//! attributes used throughout the workspace and expands to nothing.  Nothing
//! in the workspace serializes through serde yet (JSON/CSV emission is
//! hand-rolled); the derives only mark types as serializable for future use.
//! Swapping in the real serde is a Cargo.toml-only change.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
