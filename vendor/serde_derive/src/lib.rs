//! Offline stand-in for `serde_derive`: a real `#[derive(Serialize,
//! Deserialize)]` implementation built directly on `proc_macro` token
//! streams (the environment has no crates.io access, so no `syn`/`quote`).
//!
//! Supported input shapes — exactly what the workspace derives on:
//!
//! - structs with named fields, tuple structs, unit structs;
//! - enums with unit, newtype, tuple, and struct variants (including
//!   explicit discriminants, which are ignored);
//! - the `#[serde(skip)]` field attribute: the field is not serialized and
//!   is rebuilt with `Default::default()` on deserialization (real serde's
//!   semantics for `skip`).
//!
//! Not supported (the derive raises a `compile_error!` so the gap is loud
//! rather than silent): generic types, lifetimes on the derived type, and
//! any `#[serde(...)]` attribute other than `skip`.
//!
//! Generated code encodes structs positionally (`visit_seq`) and enums by
//! variant index.  That is an internal convention shared with the wire codec
//! in `crates/transport`; it is regenerated from real serde's derive if the
//! real crates are ever swapped in, so only hand-written impls need to be
//! API-compatible (and they are — see `vendor/serde`).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

/// One parsed field of a named struct or struct variant.
struct Field {
    name: String,
    skip: bool,
}

/// The shape of one parsed enum variant.
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// One parsed enum variant.
struct Variant {
    name: String,
    shape: VariantShape,
}

/// The parsed derive input.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        skips: Vec<bool>,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Real derive for `Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Real derive for `Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => gen(&item),
        Err(msg) => format!("::core::compile_error!({msg:?});"),
    };
    code.parse().unwrap_or_else(|e| {
        format!("::core::compile_error!(\"serde_derive generated invalid code: {e:?}\");")
            .parse()
            .unwrap()
    })
}

type TokenIter = Peekable<<TokenStream as IntoIterator>::IntoIter>;

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

/// Skip attributes (`#[...]`), returning whether any was `#[serde(skip)]`.
/// Any other `#[serde(...)]` content is an error: better to fail the build
/// than to silently ignore an attribute the stand-in does not implement.
fn skip_attributes(iter: &mut TokenIter) -> Result<bool, String> {
    let mut skip = false;
    while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        iter.next();
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                let mut inner = g.stream().into_iter().peekable();
                if matches!(inner.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "serde") {
                    inner.next();
                    match inner.next() {
                        Some(TokenTree::Group(args)) => {
                            for tok in args.stream() {
                                match tok {
                                    TokenTree::Ident(i) if i.to_string() == "skip" => skip = true,
                                    TokenTree::Punct(p) if p.as_char() == ',' => {}
                                    other => {
                                        return Err(format!(
                                            "unsupported #[serde(...)] attribute token `{other}` \
                                             (this offline serde_derive only supports `skip`)"
                                        ))
                                    }
                                }
                            }
                        }
                        _ => return Err("malformed #[serde] attribute".to_string()),
                    }
                }
            }
            _ => return Err("malformed attribute".to_string()),
        }
    }
    Ok(skip)
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_visibility(iter: &mut TokenIter) {
    if matches!(iter.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }
}

/// Consume tokens of a type (or discriminant expression) up to a top-level
/// comma, tracking `<...>` nesting so commas inside generics don't split.
fn skip_to_field_end(iter: &mut TokenIter) {
    let mut angle_depth = 0usize;
    while let Some(tok) = iter.peek() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                iter.next();
                return;
            }
            _ => {}
        }
        iter.next();
    }
}

/// Parse the fields of a named struct (or struct variant) body.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let skip = skip_attributes(&mut iter)?;
        if iter.peek().is_none() {
            break;
        }
        skip_visibility(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        skip_to_field_end(&mut iter);
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

/// Parse the fields of a tuple struct (or tuple variant) body, returning the
/// per-field skip flags.
fn parse_tuple_fields(stream: TokenStream) -> Result<Vec<bool>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut skips = Vec::new();
    loop {
        let skip = skip_attributes(&mut iter)?;
        if iter.peek().is_none() {
            break;
        }
        skip_visibility(&mut iter);
        skips.push(skip);
        skip_to_field_end(&mut iter);
    }
    Ok(skips)
}

/// Parse the variants of an enum body.
fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut iter)?;
        let name = match iter.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let shape = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                iter.next();
                let skips = parse_tuple_fields(g)?;
                if skips.iter().any(|&s| s) {
                    return Err("#[serde(skip)] on enum variant fields is not supported".into());
                }
                VariantShape::Tuple(skips.len())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                iter.next();
                let fields = parse_named_fields(g)?;
                if fields.iter().any(|f| f.skip) {
                    return Err("#[serde(skip)] on enum variant fields is not supported".into());
                }
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        skip_to_field_end(&mut iter);
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

/// Parse the derive input into an [`Item`].
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();
    skip_attributes(&mut iter)?;
    skip_visibility(&mut iter);
    let keyword = match iter.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "struct" || i.to_string() == "enum" => {
            i.to_string()
        }
        Some(other) => return Err(format!("unexpected token `{other}` before item keyword")),
        None => return Err("empty derive input".to_string()),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "cannot derive Serialize/Deserialize for generic type `{name}` \
             (offline serde_derive supports concrete types only)"
        ));
    }
    if keyword == "enum" {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream())?;
                Ok(Item::Enum { name, variants })
            }
            other => Err(format!("expected enum body, found {other:?}")),
        }
    } else {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok(Item::NamedStruct { name, fields })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let skips = parse_tuple_fields(g.stream())?;
                Ok(Item::TupleStruct { name, skips })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("expected struct body, found {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Codegen: Serialize.
// ---------------------------------------------------------------------------

const IMPL_ATTRS: &str =
    "#[automatically_derived]\n#[allow(unused_mut, unused_variables, non_snake_case, clippy::all)]\n";

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let kept: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            let mut body = format!(
                "let mut __state = serde::Serializer::serialize_struct(__serializer, {:?}, {})?;\n",
                name,
                kept.len()
            );
            for f in &kept {
                body.push_str(&format!(
                    "serde::ser::SerializeStruct::serialize_field(&mut __state, {:?}, &self.{})?;\n",
                    f.name, f.name
                ));
            }
            body.push_str("serde::ser::SerializeStruct::end(__state)\n");
            (name, body)
        }
        Item::TupleStruct { name, skips } => {
            let kept: Vec<usize> = (0..skips.len()).filter(|&i| !skips[i]).collect();
            let mut body = format!(
                "let mut __state = serde::Serializer::serialize_tuple_struct(__serializer, {:?}, {})?;\n",
                name,
                kept.len()
            );
            for i in &kept {
                body.push_str(&format!(
                    "serde::ser::SerializeTupleStruct::serialize_field(&mut __state, &self.{i})?;\n"
                ));
            }
            body.push_str("serde::ser::SerializeTupleStruct::end(__state)\n");
            (name, body)
        }
        Item::UnitStruct { name } => (
            name,
            format!("serde::Serializer::serialize_unit_struct(__serializer, {name:?})\n"),
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => serde::Serializer::serialize_unit_variant(\
                         __serializer, {name:?}, {idx}u32, {vname:?}),\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(ref __f0) => serde::Serializer::serialize_newtype_variant(\
                         __serializer, {name:?}, {idx}u32, {vname:?}, __f0),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let pats: Vec<String> = (0..*n).map(|i| format!("ref __f{i}")).collect();
                        let mut arm = format!(
                            "{name}::{vname}({}) => {{\n\
                             let mut __state = serde::Serializer::serialize_tuple_variant(\
                             __serializer, {name:?}, {idx}u32, {vname:?}, {n})?;\n",
                            pats.join(", ")
                        );
                        for i in 0..*n {
                            arm.push_str(&format!(
                                "serde::ser::SerializeTupleVariant::serialize_field(&mut __state, __f{i})?;\n"
                            ));
                        }
                        arm.push_str("serde::ser::SerializeTupleVariant::end(__state)\n}\n");
                        arms.push_str(&arm);
                    }
                    VariantShape::Struct(fields) => {
                        let pats: Vec<String> =
                            fields.iter().map(|f| format!("ref {}", f.name)).collect();
                        let mut arm = format!(
                            "{name}::{vname} {{ {} }} => {{\n\
                             let mut __state = serde::Serializer::serialize_struct_variant(\
                             __serializer, {name:?}, {idx}u32, {vname:?}, {})?;\n",
                            pats.join(", "),
                            fields.len()
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "serde::ser::SerializeStructVariant::serialize_field(\
                                 &mut __state, {:?}, {})?;\n",
                                f.name, f.name
                            ));
                        }
                        arm.push_str("serde::ser::SerializeStructVariant::end(__state)\n}\n");
                        arms.push_str(&arm);
                    }
                }
            }
            (name, format!("match *self {{\n{arms}}}\n"))
        }
    };
    format!(
        "{IMPL_ATTRS}impl serde::Serialize for {name} {{\n\
         fn serialize<__S: serde::Serializer>(&self, __serializer: __S) \
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n{body}}}\n}}\n"
    )
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize.
// ---------------------------------------------------------------------------

/// A `visit_seq` body reading `bindings` positional elements and finishing
/// with `construct`.
fn seq_body(bindings: &[String], construct: &str, expected: &str) -> String {
    let mut body = String::new();
    for b in bindings {
        body.push_str(&format!(
            "let {b} = match serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
             ::core::option::Option::Some(__v) => __v,\n\
             ::core::option::Option::None => return ::core::result::Result::Err(\
             serde::de::Error::custom({:?})),\n}};\n",
            format!("{expected} is missing elements")
        ));
    }
    body.push_str(&format!("::core::result::Result::Ok({construct})\n"));
    body
}

/// An inline visitor struct named `vis` whose `visit_seq` runs `seq` and
/// whose value is `value_ty`.
fn seq_visitor(vis: &str, value_ty: &str, expected: &str, seq: &str) -> String {
    format!(
        "struct {vis};\n\
         impl<'de> serde::de::Visitor<'de> for {vis} {{\n\
         type Value = {value_ty};\n\
         fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
         __f.write_str({expected:?})\n}}\n\
         fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
         -> ::core::result::Result<Self::Value, __A::Error> {{\n{seq}}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let kept: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            let bindings: Vec<String> =
                kept.iter().map(|f| format!("__field_{}", f.name)).collect();
            let mut init: Vec<String> = kept
                .iter()
                .map(|f| format!("{}: __field_{}", f.name, f.name))
                .collect();
            init.extend(
                fields
                    .iter()
                    .filter(|f| f.skip)
                    .map(|f| format!("{}: ::core::default::Default::default()", f.name)),
            );
            let expected = format!("struct {name}");
            let construct = format!("{name} {{ {} }}", init.join(", "));
            let visitor = seq_visitor(
                "__Visitor",
                name,
                &expected,
                &seq_body(&bindings, &construct, &expected),
            );
            let field_names: Vec<String> = kept.iter().map(|f| format!("{:?}", f.name)).collect();
            let body = format!(
                "{visitor}serde::Deserializer::deserialize_struct(\
                 __deserializer, {name:?}, &[{}], __Visitor)\n",
                field_names.join(", ")
            );
            (name, body)
        }
        Item::TupleStruct { name, skips } => {
            let bindings: Vec<String> = (0..skips.len())
                .filter(|&i| !skips[i])
                .map(|i| format!("__f{i}"))
                .collect();
            let args: Vec<String> = (0..skips.len())
                .map(|i| {
                    if skips[i] {
                        "::core::default::Default::default()".to_string()
                    } else {
                        format!("__f{i}")
                    }
                })
                .collect();
            let expected = format!("tuple struct {name}");
            let construct = format!("{name}({})", args.join(", "));
            let visitor = seq_visitor(
                "__Visitor",
                name,
                &expected,
                &seq_body(&bindings, &construct, &expected),
            );
            let body = format!(
                "{visitor}serde::Deserializer::deserialize_tuple_struct(\
                 __deserializer, {name:?}, {}, __Visitor)\n",
                bindings.len()
            );
            (name, body)
        }
        Item::UnitStruct { name } => {
            let body = format!(
                "struct __Visitor;\n\
                 impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                 __f.write_str({:?})\n}}\n\
                 fn visit_unit<__E: serde::de::Error>(self) -> ::core::result::Result<{name}, __E> {{\n\
                 ::core::result::Result::Ok({name})\n}}\n}}\n\
                 serde::Deserializer::deserialize_unit_struct(__deserializer, {name:?}, __Visitor)\n",
                format!("unit struct {name}")
            );
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                let arm_body = match &v.shape {
                    VariantShape::Unit => format!(
                        "{{ serde::de::VariantAccess::unit_variant(__variant)?;\n\
                         ::core::result::Result::Ok({name}::{vname}) }}\n"
                    ),
                    VariantShape::Tuple(1) => format!(
                        "serde::de::VariantAccess::newtype_variant(__variant)\
                         .map({name}::{vname})\n"
                    ),
                    VariantShape::Tuple(n) => {
                        let bindings: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let expected = format!("tuple variant {name}::{vname}");
                        let construct = format!("{name}::{vname}({})", bindings.join(", "));
                        let visitor = seq_visitor(
                            &format!("__TupleVisitor{idx}"),
                            name,
                            &expected,
                            &seq_body(&bindings, &construct, &expected),
                        );
                        format!(
                            "{{\n{visitor}serde::de::VariantAccess::tuple_variant(\
                             __variant, {n}, __TupleVisitor{idx})\n}}\n"
                        )
                    }
                    VariantShape::Struct(fields) => {
                        let bindings: Vec<String> = fields
                            .iter()
                            .map(|f| format!("__field_{}", f.name))
                            .collect();
                        let init: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{}: __field_{}", f.name, f.name))
                            .collect();
                        let expected = format!("struct variant {name}::{vname}");
                        let construct = format!("{name}::{vname} {{ {} }}", init.join(", "));
                        let visitor = seq_visitor(
                            &format!("__StructVisitor{idx}"),
                            name,
                            &expected,
                            &seq_body(&bindings, &construct, &expected),
                        );
                        let field_names: Vec<String> =
                            fields.iter().map(|f| format!("{:?}", f.name)).collect();
                        format!(
                            "{{\n{visitor}serde::de::VariantAccess::struct_variant(\
                             __variant, &[{}], __StructVisitor{idx})\n}}\n",
                            field_names.join(", ")
                        )
                    }
                };
                arms.push_str(&format!("{idx}u64 => {arm_body},\n"));
            }
            let variant_names: Vec<String> =
                variants.iter().map(|v| format!("{:?}", v.name)).collect();
            let body = format!(
                "struct __Visitor;\n\
                 impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                 __f.write_str({:?})\n}}\n\
                 fn visit_enum<__A: serde::de::EnumAccess<'de>>(self, __data: __A) \
                 -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                 let (__idx, __variant): (u64, __A::Variant) = \
                 serde::de::EnumAccess::variant(__data)?;\n\
                 match __idx {{\n{arms}\
                 _ => ::core::result::Result::Err(serde::de::Error::custom({:?})),\n}}\n}}\n}}\n\
                 serde::Deserializer::deserialize_enum(\
                 __deserializer, {name:?}, &[{}], __Visitor)\n",
                format!("enum {name}"),
                format!("unknown variant index for enum {name}"),
                variant_names.join(", ")
            );
            (name, body)
        }
    };
    format!(
        "{IMPL_ATTRS}impl<'de> serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: serde::Deserializer<'de>>(__deserializer: __D) \
         -> ::core::result::Result<Self, __D::Error> {{\n{body}}}\n}}\n"
    )
}
